//! Observation hooks for external checkers.
//!
//! [`SimHook`] lets an external observer (fiveg-oracle's invariant checker,
//! fiveg-trace's handover span assembler and flight recorder, a test
//! harness, a debugger) witness every state-mutating step of the tick
//! loop without the engine knowing anything about it. The engine threads an
//! `Option<&mut dyn SimHook>` through [`crate::engine`]; the `None` path is a
//! single branch per site, so plain [`crate::engine::run`] pays nothing —
//! the same zero-cost-when-off contract the telemetry layer follows.
//!
//! Hooks observe; they must not steer. Nothing a hook returns feeds back
//! into the simulation, so a hooked run produces a byte-identical
//! [`crate::trace::Trace`] to an unhooked one.

use fiveg_radio::Rrs;
use fiveg_ran::{CellId, HandoverRecord, HoPhase, RadioTech};
use fiveg_rrc::ReconfigAction;

/// Why the engine (re)attached the UE outside a completed HO procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachReason {
    /// The initial attach before the first tick.
    Initial,
    /// An idle-leg recovery: the serving signal fell below the RLF floor (or
    /// the leg had no serving cell) and a strong-enough candidate existed.
    Reattach {
        /// Which leg reattached.
        leg: RadioTech,
        /// True when an actual radio link failure was declared (the leg had
        /// a serving cell to lose); false when an unattached leg acquired.
        rlf: bool,
    },
}

/// The serving cell of each leg at a hook point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingCells {
    /// Serving LTE cell (master leg under NSA, only leg under LTE).
    pub lte: Option<CellId>,
    /// Serving NR cell (secondary leg under NSA, only leg under SA).
    pub nr: Option<CellId>,
}

/// End-of-tick snapshot handed to [`SimHook::on_tick`].
#[derive(Debug, Clone, Copy)]
pub struct TickView {
    /// 1-based tick ordinal (equals the `sim.ticks` counter).
    pub tick: u64,
    /// Sim time, s.
    pub t: f64,
    /// Serving cells after every mutation of this tick.
    pub serving: ServingCells,
    /// HO state machine phase at end of tick.
    pub phase: HoPhase,
    /// Chained follow-up procedures still queued in the state machine.
    pub queued: usize,
    /// Serving LTE measurement, when that leg is measured and attached.
    pub lte_rrs: Option<Rrs>,
    /// Serving NR measurement, when that leg is measured and attached.
    pub nr_rrs: Option<Rrs>,
    /// Composed downlink capacity recorded in the trace sample, Mbit/s.
    pub capacity_mbps: f64,
}

/// Observer of engine state transitions. Every method has an empty default
/// body so implementors override only what they watch.
///
/// Call order within one tick: HO events ([`Self::on_ho_command`] /
/// [`Self::on_ho_complete`] / [`Self::on_ho_failure`]) → reattaches
/// ([`Self::on_attach`]) → policy decisions ([`Self::on_decision`]) →
/// [`Self::on_tick`]. [`Self::on_attach`] with [`AttachReason::Initial`]
/// fires once before the first tick, [`Self::on_run_end`] once after the
/// last.
#[allow(unused_variables)]
pub trait SimHook {
    /// The engine attached the UE outside a completed HO (initial, or RLF
    /// recovery). `serving` is the post-attach state.
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {}

    /// The policy issued `action` and the state machine accepted it
    /// (preparation begins this tick).
    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {}

    /// Preparation finished: the HO command went out to the UE (execution
    /// begins).
    fn on_ho_command(&mut self, t: f64) {}

    /// Execution finished and the engine committed the HO. `serving` is the
    /// post-apply state.
    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {}

    /// Execution finished but fault injection failed the HO; the engine
    /// rolled back to the pre-HO cells (`serving`) and aborted any chained
    /// follow-up.
    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {}

    /// A scheduled engine (referee or event-driven) fast-forwarded the UE
    /// over `skipped` quiet ticks: no tick between `from_tick` (exclusive)
    /// and `from_tick + skipped` (inclusive) was sampled, so none of them
    /// produced an [`Self::on_tick`] call. Fires at the wake tick, before
    /// that tick's events; the next [`Self::on_tick`] carries tick
    /// `from_tick + skipped + 1`. Stepped runs never call this, and a
    /// checker may treat any tick gap *not* declared this way as an engine
    /// bug (an overslept UE).
    fn on_sleep(&mut self, from_tick: u64, skipped: u64) {}

    /// End of one tick; `view` is the state the trace sample was built from.
    fn on_tick(&mut self, view: &TickView) {}

    /// The run finished (route exhausted or duration cap hit).
    fn on_run_end(&mut self, t: f64, serving: ServingCells, phase: HoPhase, queued: usize) {}
}
