//! Multi-UE fleet engine: N load-coupled UEs against one shared deployment.
//!
//! Every single-UE entry point in [`crate::engine`] simulates exactly one
//! device; the paper's findings (HO frequency, dual-steering, QoE impact)
//! are population effects. This module runs a *fleet* of `UeSim`s in
//! lockstep against one immutable [`Deployment`], coupling them through
//! **cell load**: each tick publishes per-cell attach counts, and the next
//! tick's link-layer capacity is scaled by the serving cell's equal share
//! ([`fiveg_link::load_share`]).
//!
//! # Determinism
//!
//! The output is byte-identical at any `--threads`:
//!
//! * UEs are sharded into contiguous index ranges; each UE's step sequence
//!   depends only on its own scenario and the load table, never on shard
//!   boundaries;
//! * the load table is double-buffered and barrier-synced: tick `k` reads
//!   the counts *all* UEs published during tick `k-1`, so no worker ever
//!   observes a partially-written tick;
//! * counts are merged with commutative integer `fetch_add`s — the merge
//!   result is independent of worker interleaving;
//! * results, telemetry ([`Telemetry::absorb`]) and hooks are collected in
//!   UE-index order.
//!
//! UE 0 always runs the base scenario verbatim, so a fleet of size 1
//! produces a [`Trace`] byte-identical to [`Scenario::run`] (held to that
//! by a proptest below). Other UEs get derived seeds, hashed start-tick
//! offsets inside the stagger window, alternating route direction and a
//! small deterministic speed jitter.
//!
//! # Cache sharing
//!
//! The per-(pos, t) radio caches ([`fiveg_ran::RadioSnapshot`] wrapping the
//! `LatticeCache`/`ChannelCache` pair) are *per UE*, which is the "per
//! shard" option from the design space: the lattice memos are
//! last-position caches, so sharing one across UEs at different positions
//! would thrash every lookup. Owned per UE they hit exactly as often as in
//! the single-UE hot path, keeping per-UE cost near single-UE cost; the
//! deployment (cells, towers, grid index) is the shared read-only part.

use crate::engine::{RadioPath, UeSim};
use crate::hook::SimHook;
use crate::scenario::Scenario;
use crate::trace::Trace;
use fiveg_link::load_share;
use fiveg_radio::hash2;
use fiveg_ran::{Arch, Carrier, CellId, Deployment, Environment, RadioSnapshot};
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use fiveg_ue::SpeedProfile;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Barrier, Mutex};

/// Read-only view of the previous tick's per-cell attach counts, consumed
/// by `UeSim::step` when computing leg capacities.
///
/// [`CellLoadView::SOLO`] is the single-UE engine's view: no load table at
/// all, every share is exactly `1.0`, and the capacity math is bit-for-bit
/// the pre-fleet engine's (the "no other UEs" bugfix contract guarded by
/// `tests/trace_equivalence.rs`).
#[derive(Clone, Copy, Default)]
pub struct CellLoadView<'a> {
    counts: Option<&'a [AtomicU32]>,
}

impl<'a> CellLoadView<'a> {
    /// The single-UE view: every cell's share is exactly `1.0`.
    pub const SOLO: CellLoadView<'static> = CellLoadView { counts: None };

    /// A view over a fully-merged per-cell attach-count table (indexed by
    /// `CellId`). The counts include the reading UE itself, so a UE alone
    /// on its cell still gets share `1.0`.
    pub fn from_counts(counts: &'a [AtomicU32]) -> CellLoadView<'a> {
        CellLoadView { counts: Some(counts) }
    }

    /// Equal capacity share of `cell` under the recorded load.
    pub fn share(&self, cell: CellId) -> f64 {
        match self.counts {
            None => 1.0,
            Some(c) => load_share(c.get(cell.0 as usize).map_or(0, |a| a.load(Ordering::Relaxed))),
        }
    }
}

/// A fleet of N UEs derived from one base scenario.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The base scenario: deployment seed, route, carrier, arch, workload.
    /// UE 0 runs it verbatim.
    pub base: Scenario,
    /// Fleet size (>= 1).
    pub n_ues: u32,
    /// Start offsets are hashed into `[0, stagger_s]` of simulated time
    /// (UE 0 always starts at tick 0).
    pub stagger_s: f64,
    /// Per-UE speed scale is hashed into `1.0 ± speed_jitter` (UE 0 keeps
    /// the base profile).
    pub speed_jitter: f64,
    /// Keep every per-UE [`Trace`] in the [`FleetTrace`] (memory scales
    /// with fleet size × duration; off by default — summaries only).
    pub keep_traces: bool,
}

impl FleetSpec {
    /// A fleet with the default heterogeneity: 20 s stagger window, ±10%
    /// speed jitter, summaries only.
    pub fn new(base: Scenario, n_ues: u32) -> FleetSpec {
        FleetSpec { base, n_ues, stagger_s: 20.0, speed_jitter: 0.1, keep_traces: false }
    }

    /// Sets the start-offset window, s.
    pub fn stagger_s(mut self, s: f64) -> FleetSpec {
        self.stagger_s = s;
        self
    }

    /// Sets the speed-jitter fraction.
    pub fn speed_jitter(mut self, j: f64) -> FleetSpec {
        self.speed_jitter = j;
        self
    }

    /// Keeps the per-UE traces in the fleet output.
    pub fn keep_traces(mut self, keep: bool) -> FleetSpec {
        self.keep_traces = keep;
        self
    }

    /// The derived plan for UE `ue`: scenario, global start tick, route
    /// direction. Pure function of the spec — workers on any shard compute
    /// identical plans.
    pub fn ue_plan(&self, ue: u32) -> UePlan {
        if ue == 0 {
            // the identity UE: base scenario verbatim, so a fleet of one
            // reproduces the single-UE engine byte for byte
            return UePlan { ue, scenario: self.base.clone(), start_tick: 0, reversed: false };
        }
        let seed = hash2(self.base.seed, 0xF1EE_7000 ^ ue as u64);
        let mut s = self.base.clone();
        s.seed = seed;
        let reversed = ue % 2 == 1;
        if reversed {
            let mut pts = s.route.points().to_vec();
            pts.reverse();
            s.route = fiveg_geo::Polyline::new(pts);
        }
        let scale = 1.0 + self.speed_jitter * (2.0 * unit(seed, 0x5BEED) - 1.0);
        s.speed = scale_speed(s.speed, scale);
        let window = (self.stagger_s * self.base.sample_hz).max(0.0) as u64;
        let start_tick = if window == 0 { 0 } else { hash2(seed, 0x0FF5E7) % (window + 1) };
        UePlan { ue, scenario: s, start_tick, reversed }
    }
}

/// Uniform draw in `[0, 1)` from a seeded hash.
fn unit(seed: u64, salt: u64) -> f64 {
    (hash2(seed, salt) >> 11) as f64 / (1u64 << 53) as f64
}

fn scale_speed(sp: SpeedProfile, f: f64) -> SpeedProfile {
    match sp {
        SpeedProfile::Constant { mps } => SpeedProfile::Constant { mps: mps * f },
        SpeedProfile::StopAndGo { peak_mps, period_s, stop_s } => {
            SpeedProfile::StopAndGo { peak_mps: peak_mps * f, period_s, stop_s }
        }
    }
}

/// One UE's derived scenario and schedule.
#[derive(Debug, Clone)]
pub struct UePlan {
    /// UE index within the fleet.
    pub ue: u32,
    /// The derived scenario (seed, route direction, speed).
    pub scenario: Scenario,
    /// Global tick at which this UE enters the simulation.
    pub start_tick: u64,
    /// Whether the route runs opposite to the base direction.
    pub reversed: bool,
}

/// Fleet-run metadata (thread-count independent by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMeta {
    /// Fleet size.
    pub n_ues: u32,
    /// Base scenario seed (per-UE seeds derive from it).
    pub seed: u64,
    /// Carrier under test.
    pub carrier: Carrier,
    /// Deployment environment.
    pub env: Environment,
    /// Service architecture.
    pub arch: Arch,
    /// Tick rate, Hz.
    pub sample_hz: f64,
    /// Per-UE simulated-time cap, s.
    pub max_duration_s: f64,
    /// Start-offset window, s.
    pub stagger_s: f64,
    /// Speed-jitter fraction.
    pub speed_jitter: f64,
    /// Cells in the shared deployment.
    pub cells: u32,
    /// Global lockstep ticks executed.
    pub ticks: u64,
}

/// Per-UE result summary: the trace-level aggregates plus the fleet-only
/// congestion statistics that never reach a single-UE [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UeSummary {
    /// UE index within the fleet.
    pub ue: u32,
    /// The UE's derived scenario seed.
    pub seed: u64,
    /// Global tick at which the UE entered the simulation.
    pub start_tick: u64,
    /// Route direction relative to the base scenario.
    pub reversed: bool,
    /// Ticks the UE executed.
    pub ticks: u64,
    /// Distance traveled, m.
    pub traveled_m: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Failed handovers (fault injection).
    pub ho_failures: u64,
    /// Radio link failures.
    pub rlf_count: u64,
    /// Measurement reports sent.
    pub reports: u64,
    /// Mean per-tick downlink capacity, Mbps.
    pub mean_capacity_mbps: f64,
    /// Ticks where the serving share was < 1.0 (cell contention).
    pub loaded_ticks: u64,
    /// Mean serving share over the run (1.0 = never contended).
    pub mean_load_share: f64,
}

impl UeSummary {
    fn from_trace(plan: &UePlan, trace: &Trace, loaded_ticks: u64, share_sum: f64) -> UeSummary {
        let ticks = trace.samples.len() as u64;
        let mean_cap = if trace.samples.is_empty() {
            0.0
        } else {
            trace.samples.iter().map(|s| s.capacity_mbps).sum::<f64>() / trace.samples.len() as f64
        };
        UeSummary {
            ue: plan.ue,
            seed: plan.scenario.seed,
            start_tick: plan.start_tick,
            reversed: plan.reversed,
            ticks,
            traveled_m: trace.meta.traveled_m,
            handovers: trace.handovers.len() as u64,
            ho_failures: trace.ho_failures,
            rlf_count: trace.rlf_count,
            reports: trace.reports.len() as u64,
            mean_capacity_mbps: mean_cap,
            loaded_ticks,
            mean_load_share: if ticks == 0 { 1.0 } else { share_sum / ticks as f64 },
        }
    }
}

/// Fleet-level load statistics, accumulated by the coordinator from the
/// fully-merged count table once per tick (single-threaded, so the scan
/// order — and the result — is independent of worker count).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// Peak number of UEs stepping in one tick.
    pub peak_active_ues: u32,
    /// Peak concurrent attached UEs on one cell (both legs counted).
    pub peak_cell_ues: u32,
    /// Σ over ticks and cells of the attach count (UE·tick units; a
    /// dual-connected UE contributes on both serving cells).
    pub attach_ue_ticks: u64,
    /// The subset of `attach_ue_ticks` on cells holding >= 2 UEs — the
    /// share-reducing congestion the link layer actually sees.
    pub contended_ue_ticks: u64,
}

/// The deterministic output of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Run metadata.
    pub meta: FleetMeta,
    /// Per-UE summaries, in UE order.
    pub ues: Vec<UeSummary>,
    /// Fleet-level load statistics.
    pub load: LoadSummary,
    /// Per-UE traces, in UE order (empty unless [`FleetSpec::keep_traces`]).
    pub traces: Vec<Trace>,
}

/// Observer that observes nothing: the hook-free fleet path.
struct NoHook;
impl SimHook for NoHook {}

/// Runs a fleet with telemetry disabled. See [`run_fleet_instrumented`].
pub fn run_fleet(spec: &FleetSpec, threads: usize) -> FleetTrace {
    run_fleet_instrumented(spec, threads, &Telemetry::disabled())
}

/// Runs a fleet recording into a caller-owned [`Telemetry`] handle.
///
/// Per-UE telemetry runs on [`TelemetryConfig::deterministic`] handles and
/// is absorbed into `tele` in UE order after the run (commutative counter
/// and histogram merges — see [`Telemetry::absorb`]), plus fleet-level
/// `fleet.*` counters. The returned [`FleetTrace`] is byte-identical at
/// any `threads`.
pub fn run_fleet_instrumented(spec: &FleetSpec, threads: usize, tele: &Telemetry) -> FleetTrace {
    run_fleet_core::<NoHook>(spec, threads, tele, None).0
}

/// Runs a fleet with one [`SimHook`] per UE, built by `factory` (called
/// with the UE index). Hooks observe only — the trace is identical to
/// [`run_fleet`]'s — and are returned in UE order, so an invariant oracle
/// can be attached to every UE and queried afterwards.
pub fn run_fleet_observed<H, F>(spec: &FleetSpec, threads: usize, tele: &Telemetry, factory: F) -> (FleetTrace, Vec<H>)
where
    H: SimHook + Send,
    F: Fn(u32) -> H + Sync,
{
    let (ft, hooks) = run_fleet_core(spec, threads, tele, Some(&factory));
    (ft, hooks.expect("factory was provided"))
}

/// One worker-owned UE slot.
enum Slot<'d, H: SimHook> {
    /// Waiting for its start tick.
    Pending,
    /// Stepping.
    Running(Box<RunningUe<'d, H>>),
    /// Finalized into the results table.
    Done,
}

struct RunningUe<'d, H: SimHook> {
    sim: UeSim<'d>,
    hook: Option<H>,
    tele: Telemetry,
}

struct UeOut<H> {
    summary: UeSummary,
    trace: Option<Trace>,
    tele: Telemetry,
    hook: Option<H>,
}

#[allow(clippy::type_complexity)]
fn run_fleet_core<H: SimHook + Send>(
    spec: &FleetSpec,
    threads: usize,
    tele: &Telemetry,
    factory: Option<&(dyn Fn(u32) -> H + Sync)>,
) -> (FleetTrace, Option<Vec<H>>) {
    assert!(spec.n_ues >= 1, "a fleet needs at least one UE");
    let n = spec.n_ues as usize;
    let threads = threads.clamp(1, n);
    let base = &spec.base;
    let d = Deployment::generate(&base.route, base.carrier, base.env, base.arch, base.seed);
    let n_cells = d.cells.len();

    let plans: Vec<UePlan> = (0..spec.n_ues).map(|i| spec.ue_plan(i)).collect();
    // telemetry wall-clock timers are not deterministic; per-UE handles run
    // counters+journal only (or fully off when the fleet handle is off)
    let per_ue_cfg = if tele.is_enabled() { TelemetryConfig::deterministic() } else { TelemetryConfig::OFF };

    // Double-buffered per-cell attach counts: tick k reads bufs[k % 2]
    // (fully merged during tick k-1) and fetch_adds into bufs[1 - k % 2].
    let bufs: [Vec<AtomicU32>; 2] =
        [(0..n_cells).map(|_| AtomicU32::new(0)).collect(), (0..n_cells).map(|_| AtomicU32::new(0)).collect()];
    let active = AtomicU32::new(0);
    let stepped = AtomicU32::new(0);
    let done = AtomicBool::new(false);
    // workers + coordinator; two waits per tick (merge point, release point)
    let barrier = Barrier::new(threads + 1);
    let results: Vec<Mutex<Option<UeOut<H>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let chunk = n.div_ceil(threads);

    let mut ticks = 0u64;
    let mut load = LoadSummary::default();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let (d, plans, bufs, active, stepped, done, barrier, results) =
                (&d, &plans, &bufs, &active, &stepped, &done, &barrier, &results);
            let keep = spec.keep_traces;
            scope.spawn(move || {
                let mut slots: Vec<Slot<'_, H>> = (lo..hi).map(|_| Slot::Pending).collect();
                for k in 0u64.. {
                    let read = CellLoadView::from_counts(&bufs[(k % 2) as usize]);
                    let write = &bufs[(1 - k % 2) as usize];
                    let mut still = 0u32;
                    let mut moved = 0u32;
                    for (j, slot) in slots.iter_mut().enumerate() {
                        let i = lo + j;
                        if matches!(slot, Slot::Pending) && k >= plans[i].start_tick {
                            let ue_tele = Telemetry::new(per_ue_cfg);
                            let mut hook = factory.map(|f| f(i as u32));
                            let sim = UeSim::new(
                                plans[i].scenario.clone(),
                                d,
                                &ue_tele,
                                RadioPath::Snapshot(RadioSnapshot::new()),
                                hook.as_mut().map(|h| h as &mut dyn SimHook),
                            );
                            *slot = Slot::Running(Box::new(RunningUe { sim, hook, tele: ue_tele }));
                        }
                        match slot {
                            Slot::Done => {}
                            Slot::Pending => still += 1,
                            Slot::Running(run) => {
                                if run.sim.active() {
                                    run.sim.step(run.hook.as_mut().map(|h| h as &mut dyn SimHook), &read);
                                    moved += 1;
                                    let (lte, nr) = run.sim.serving();
                                    if let Some(id) = lte {
                                        write[id.0 as usize].fetch_add(1, Ordering::Relaxed);
                                    }
                                    if let Some(id) = nr {
                                        write[id.0 as usize].fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                if run.sim.active() {
                                    still += 1;
                                } else {
                                    let out = match std::mem::replace(slot, Slot::Done) {
                                        Slot::Running(run) => finalize(&plans[i], *run, keep),
                                        _ => unreachable!(),
                                    };
                                    *results[i].lock().unwrap() = Some(out);
                                }
                            }
                        }
                    }
                    if still > 0 {
                        active.fetch_add(still, Ordering::Relaxed);
                    }
                    if moved > 0 {
                        stepped.fetch_add(moved, Ordering::Relaxed);
                    }
                    barrier.wait(); // tick k fully merged
                    barrier.wait(); // coordinator published verdict + zeroed buffer
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }

        // coordinator: per-tick bookkeeping between the two barriers, while
        // every worker is parked — the only writer of `done` and the stats
        for k in 0u64.. {
            barrier.wait();
            let a = active.swap(0, Ordering::Relaxed);
            let m = stepped.swap(0, Ordering::Relaxed);
            // Count tick k only if it stepped a UE or left one alive
            // (pending or running). A final pass where both are zero —
            // every remaining UE was constructed already-inactive, e.g. a
            // zero-duration scenario — advanced nothing and must not
            // inflate the reported global tick count.
            if a > 0 || m > 0 {
                ticks = k + 1;
            }
            load.peak_active_ues = load.peak_active_ues.max(m);
            for c in &bufs[(1 - k % 2) as usize] {
                let v = c.load(Ordering::Relaxed);
                if v > 0 {
                    load.attach_ue_ticks += v as u64;
                    load.peak_cell_ues = load.peak_cell_ues.max(v);
                    if v >= 2 {
                        load.contended_ue_ticks += v as u64;
                    }
                }
            }
            // the buffer tick k read from becomes tick k+1's write target
            for c in &bufs[(k % 2) as usize] {
                c.store(0, Ordering::Relaxed);
            }
            if a == 0 {
                done.store(true, Ordering::Relaxed);
            }
            barrier.wait();
            if a == 0 {
                break;
            }
        }
    });

    // collect in UE order: summaries, optional traces, telemetry, hooks
    let mut ues = Vec::with_capacity(n);
    let mut traces = Vec::new();
    let mut hooks = factory.map(|_| Vec::with_capacity(n));
    for slot in results {
        let out = slot.into_inner().unwrap().expect("every UE must be finalized");
        tele.absorb(&out.tele);
        ues.push(out.summary);
        if let Some(tr) = out.trace {
            traces.push(tr);
        }
        if let (Some(hs), Some(h)) = (hooks.as_mut(), out.hook) {
            hs.push(h);
        }
    }
    tele.add("fleet.ues", spec.n_ues as u64);
    tele.add("fleet.ticks", ticks);
    tele.add("fleet.attach_ue_ticks", load.attach_ue_ticks);
    tele.add("fleet.contended_ue_ticks", load.contended_ue_ticks);

    let meta = FleetMeta {
        n_ues: spec.n_ues,
        seed: base.seed,
        carrier: base.carrier,
        env: base.env,
        arch: base.arch,
        sample_hz: base.sample_hz,
        max_duration_s: base.max_duration_s,
        stagger_s: spec.stagger_s,
        speed_jitter: spec.speed_jitter,
        cells: n_cells as u32,
        ticks,
    };
    (FleetTrace { meta, ues, load, traces }, hooks)
}

fn finalize<H: SimHook>(plan: &UePlan, run: RunningUe<'_, H>, keep: bool) -> UeOut<H> {
    let (loaded_ticks, share_sum) = run.sim.load_stats();
    let mut hook = run.hook;
    let trace = run.sim.into_trace(hook.as_mut().map(|h| h as &mut dyn SimHook));
    let summary = UeSummary::from_trace(plan, &trace, loaded_ticks, share_sum);
    UeOut { summary, trace: keep.then_some(trace), tele: run.tele, hook }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::{Arch, Carrier};

    fn base(seed: u64) -> Scenario {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, seed).duration_s(40.0).sample_hz(5.0).build()
    }

    #[test]
    fn fleet_of_one_is_single_run() {
        let s = base(11);
        let single = s.run();
        let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 1);
        assert_eq!(ft.traces.len(), 1);
        assert_eq!(ft.traces[0], single, "size-1 fleet must reproduce the single-UE engine exactly");
        assert_eq!(ft.load.contended_ue_ticks, 0, "one UE can never contend with itself");
        assert_eq!(ft.ues[0].mean_load_share, 1.0);
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let spec = FleetSpec::new(base(12), 7).keep_traces(true);
        let a = run_fleet(&spec, 1);
        let b = run_fleet(&spec, 3);
        assert_eq!(a, b, "fleet output must not depend on the worker count");
    }

    #[test]
    fn load_coupling_only_reduces_capacity() {
        // all UEs share the route window (no stagger): cells are contended,
        // and the only effect coupling may have on the identity UE's trace
        // is a lower per-tick capacity — serving cells, handovers and
        // reports must match the solo run exactly (load does not feed back
        // into the control plane)
        let s = base(13);
        let solo = s.run();
        let ft = run_fleet(&FleetSpec::new(s, 12).stagger_s(0.0).keep_traces(true), 2);
        assert!(ft.load.contended_ue_ticks > 0, "12 co-routed UEs must contend: {:?}", ft.load);
        assert!(ft.load.peak_cell_ues >= 2);
        let ue0 = &ft.traces[0];
        assert_eq!(ue0.handovers, solo.handovers);
        assert_eq!(ue0.reports, solo.reports);
        assert_eq!(ue0.samples.len(), solo.samples.len());
        let mut lowered = 0;
        for (a, b) in ue0.samples.iter().zip(&solo.samples) {
            assert_eq!(a.lte_cell, b.lte_cell);
            assert_eq!(a.nr_cell, b.nr_cell);
            assert!(a.capacity_mbps <= b.capacity_mbps + 1e-12, "{} > {}", a.capacity_mbps, b.capacity_mbps);
            if a.capacity_mbps < b.capacity_mbps {
                lowered += 1;
            }
        }
        assert!(lowered > 0, "contention must actually lower some tick's capacity");
        assert!(ft.ues[0].mean_load_share < 1.0);
        assert!(ft.ues[0].loaded_ticks > 0);
    }

    #[test]
    fn fleet_ticks_count_only_advancing_ticks() {
        // the normal case: the last global tick is the one in which the
        // final UE takes its final step, so ticks == max(start + ue ticks)
        let ft = run_fleet(&FleetSpec::new(base(17), 5), 2);
        let last = ft.ues.iter().map(|u| u.start_tick + u.ticks).max().unwrap();
        assert_eq!(ft.meta.ticks, last, "no trailing tick beyond the last step");

        // the degenerate case: zero-duration scenarios construct every
        // UeSim already inactive, so the lone coordinator pass steps
        // nothing — it must not be counted as a global tick
        let dead = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 17).duration_s(0.0).sample_hz(5.0).build();
        let ft = run_fleet(&FleetSpec::new(dead, 3).stagger_s(0.0), 2);
        assert_eq!(ft.ues.iter().map(|u| u.ticks).sum::<u64>(), 0);
        assert_eq!(ft.meta.ticks, 0, "a fleet that never steps executed zero ticks");
    }

    #[test]
    fn staggered_ues_enter_late_and_summaries_line_up() {
        let ft = run_fleet(&FleetSpec::new(base(14), 5), 2);
        assert_eq!(ft.ues.len(), 5);
        assert_eq!(ft.ues[0].start_tick, 0);
        assert!(ft.ues.iter().enumerate().all(|(i, u)| u.ue == i as u32), "summaries must be in UE order");
        assert!(ft.ues.iter().skip(1).any(|u| u.start_tick > 0), "the stagger window should offset someone");
        assert!(ft.ues.iter().skip(1).any(|u| u.reversed), "odd UEs run the route backwards");
        let max_start = ft.ues.iter().map(|u| u.start_tick).max().unwrap();
        assert!(ft.meta.ticks >= max_start + 1);
        assert!(ft.traces.is_empty(), "keep_traces defaults to off");
    }

    #[test]
    fn telemetry_absorbs_per_ue_counters() {
        let tele = Telemetry::new(TelemetryConfig::on());
        let ft = run_fleet_instrumented(&FleetSpec::new(base(15), 4), 2, &tele);
        let total: u64 = ft.ues.iter().map(|u| u.ticks).sum();
        assert_eq!(tele.counter_value("sim.ticks"), total);
        assert_eq!(tele.counter_value("fleet.ues"), 4);
        assert_eq!(tele.counter_value("fleet.ticks"), ft.meta.ticks);
        assert_eq!(tele.counter_value("fleet.attach_ue_ticks"), ft.load.attach_ue_ticks);
        let hos: u64 = ft.ues.iter().map(|u| u.handovers).sum();
        assert_eq!(tele.counter_value("sim.handovers"), hos);
    }

    #[test]
    fn hooks_are_built_and_returned_per_ue() {
        struct TickCounter(u64);
        impl SimHook for TickCounter {
            fn on_tick(&mut self, _view: &crate::hook::TickView) {
                self.0 += 1;
            }
        }
        let (ft, hooks) =
            run_fleet_observed(&FleetSpec::new(base(16), 3), 2, &Telemetry::disabled(), |_| TickCounter(0));
        assert_eq!(hooks.len(), 3);
        for (h, u) in hooks.iter().zip(&ft.ues) {
            assert_eq!(h.0, u.ticks, "each hook must see exactly its UE's ticks");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// The tentpole equivalence, property-tested: for any seed and
            /// architecture, a fleet of size 1 reproduces the single-UE
            /// `run` of the same scenario exactly (the JSON byte-identity
            /// variant lives in `tests/fleet_determinism.rs`).
            #[test]
            fn fleet_of_one_matches_run(seed in 0u64..1000, arch_pick in 0u8..3) {
                let arch = [Arch::Nsa, Arch::Sa, Arch::Lte][arch_pick as usize];
                let s = ScenarioBuilder::freeway(Carrier::OpY, arch, 2.0, seed)
                    .duration_s(30.0)
                    .sample_hz(5.0)
                    .build();
                let single = s.run();
                for threads in [1usize, 2] {
                    let ft = run_fleet(&FleetSpec::new(s.clone(), 1).keep_traces(true), threads);
                    prop_assert_eq!(&ft.traces[0], &single);
                }
            }
        }
    }
}
