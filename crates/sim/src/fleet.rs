//! Multi-UE fleet engine: N load-coupled UEs against one shared deployment,
//! executed on **spatial shards**.
//!
//! Every single-UE entry point in [`crate::engine`] simulates exactly one
//! device; the paper's findings (HO frequency, dual-steering, QoE impact)
//! are population effects. This module runs a *fleet* of `UeSim`s in
//! lockstep against one immutable [`Deployment`], coupling them through
//! **cell load**: each tick publishes per-cell attach counts, and the next
//! tick's link-layer capacity is scaled by the serving cell's equal share
//! ([`fiveg_link::load_share`]).
//!
//! # Spatial sharding
//!
//! The world is partitioned by the deployment's grid index: a [`ShardMap`]
//! assigns each shard a contiguous band of grid-index x-columns, and each
//! shard owns the UEs currently inside its band (struct-of-arrays layout:
//! parallel `idx`/`sims`/`hooks`/`teles` vectors). Shard-local state a
//! worker touches every tick is plain, unsynchronized data:
//!
//! * per-cell attach counts are plain `u32`s, incremented without atomics;
//! * a per-shard [`RadioSnapshot`] arena replaces the old per-UE radio
//!   caches — the snapshot is a pure memo of `(pos, t)`, so sharing one
//!   across the shard's UEs cannot change any UE's bytes, and the per-UE
//!   cache memory disappears;
//! * per-UE scratch (leg views, candidate tables) lives inside `UeSim` and
//!   is reused across ticks, so steady-state stepping does not allocate.
//!
//! Once per tick the coordinator performs the **boundary exchange** while
//! every worker is parked between the two barriers: it folds each shard's
//! count table into the global read table (commutative integer adds — the
//! merged table is independent of shard count), accumulates the load
//! statistics from the merged table, and zeroes the shard tables for the
//! next tick.
//!
//! A UE whose step moved it across a shard boundary **migrates** via an
//! explicit mailbox message carrying its fleet index, `UeSim`, hook and
//! telemetry handle (the `AddressMapping`/`Topology` pattern). Mailboxes
//! are double-buffered by tick parity: a UE stepped at tick `k` is pushed
//! into the target's tick-`k+1` inbox before the tick-`k` barrier, and the
//! target drains exactly that inbox at the start of tick `k+1` — the UE
//! misses no tick and can never be stepped twice in one tick.
//!
//! # Determinism
//!
//! The output is byte-identical at any `--threads` and any `--shards`:
//!
//! * each UE's step sequence depends only on its own scenario and the
//!   merged load table, never on which shard hosts it;
//! * the merged table is the commutative integer sum of the shard tables,
//!   and tick `k` reads the counts *all* UEs published during tick `k-1`
//!   (no worker ever observes a partially-merged tick);
//! * results, telemetry ([`Telemetry::absorb`]) and hooks are collected in
//!   UE-index order.
//!
//! UE 0 always runs the base scenario verbatim, so a fleet of size 1
//! produces a [`Trace`] byte-identical to [`Scenario::run`] (held to that
//! by a proptest below). Other UEs get derived seeds, hashed start-tick
//! offsets inside the stagger window, alternating route direction and a
//! small deterministic speed jitter.
//!
//! # Execution modes
//!
//! [`EngineMode`] selects how the lockstep loop treats quiescent UEs:
//!
//! * [`EngineMode::Stepped`] (default) — the v2 engine: every active UE steps
//!   every tick. The reference semantics.
//! * [`EngineMode::EventDriven`] — after each real step the shard asks
//!   `crate::engine::wakeup` for a conservative *inertness window*: the
//!   number of future ticks in which the UE's control plane provably does
//!   nothing (no event arms, no RLF, no HO, no RNG draw). A UE with a
//!   window sleeps on the shard's **calendar wheel** (a 128-slot
//!   [`crate::wheel::EventQueue`] — no steady-state allocation) and is
//!   skipped entirely
//!   until its wake tick; on wakeup `crate::engine::UeSim::catch_up`
//!   replays the skipped prologues (clock, tick counter, mobility) in one
//!   analytic burst. Sleeping UEs keep their serving cells published in a
//!   *persistent* load table maintained by per-shard deltas, and a sleeper
//!   is woken early when a neighbor's attach/detach changes the
//!   [`fiveg_link::load_share`] at its serving cell.
//! * [`EngineMode::Referee`] — the referee: runs the *same* scheduler
//!   decisions as `EventDriven` (same sleeps, same wakes, same wheel), but
//!   instead of skipping a sleeping UE it steps it every tick with
//!   sampling disabled — the full control plane still executes. If a
//!   wakeup bound were ever unsound, the control plane would act during a
//!   "provably inert" tick and the two modes' [`FleetTrace`]s would
//!   diverge; `tests/trace_equivalence.rs` and the fleet gates byte-compare
//!   them to prove the bound.
//!
//! Scheduling is a pure function of per-UE state and the merged load
//! table, so every mode stays byte-identical at any thread/shard count.
//! The scheduled modes share one invariant with `Stepped`: ticks, distance,
//! handovers, reports, RLFs and the whole [`LoadSummary`] are equal; only
//! the data-plane sampling aggregates (`mean_capacity_mbps`,
//! `loaded_ticks`, `mean_load_share`) legitimately differ, because sleeping
//! UEs do not sample the link layer.

use crate::engine::wakeup::PlanScratch;
use crate::engine::{RadioPath, UeRunStats, UeSim};
use crate::hook::SimHook;
use crate::scenario::Scenario;
use crate::trace::Trace;
use crate::wheel::EventQueue;
use fiveg_geo::Point;
use fiveg_link::{load_share, load_share_shifted};
use fiveg_radio::hash2;
use fiveg_ran::{Arch, Carrier, CellId, Deployment, Environment, RadioSnapshot};
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use fiveg_ue::SpeedProfile;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Barrier, Mutex};

/// Read-only view of the previous tick's per-cell attach counts, consumed
/// by `UeSim::step` when computing leg capacities.
///
/// [`CellLoadView::SOLO`] is the single-UE engine's view: no load table at
/// all, every share is exactly `1.0`, and the capacity math is bit-for-bit
/// the pre-fleet engine's (the "no other UEs" bugfix contract guarded by
/// `tests/trace_equivalence.rs`).
#[derive(Clone, Copy, Default)]
pub struct CellLoadView<'a> {
    counts: Option<&'a [AtomicU32]>,
}

impl<'a> CellLoadView<'a> {
    /// The single-UE view: every cell's share is exactly `1.0`.
    pub const SOLO: CellLoadView<'static> = CellLoadView { counts: None };

    /// A view over a fully-merged per-cell attach-count table (indexed by
    /// `CellId`). The counts include the reading UE itself, so a UE alone
    /// on its cell still gets share `1.0`.
    pub fn from_counts(counts: &'a [AtomicU32]) -> CellLoadView<'a> {
        CellLoadView { counts: Some(counts) }
    }

    /// Equal capacity share of `cell` under the recorded load.
    pub fn share(&self, cell: CellId) -> f64 {
        match self.counts {
            None => 1.0,
            Some(c) => load_share(c.get(cell.0 as usize).map_or(0, |a| a.load(Ordering::Relaxed))),
        }
    }
}

/// How the lockstep loop treats quiescent UEs (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Every active UE steps every tick — the v2 reference semantics.
    #[default]
    Stepped,
    /// Runs the event-driven schedule (same sleeps, wakes and wheel as
    /// [`EngineMode::EventDriven`]) but steps sleeping UEs every tick with
    /// sampling disabled, so their full control plane still executes. The
    /// referee mode: byte-equality with `EventDriven` proves every wakeup
    /// bound sound.
    Referee,
    /// Skips provably-inert UEs entirely: sleeping UEs are parked on a
    /// per-shard calendar wheel and replay the skipped ticks analytically
    /// on wakeup.
    EventDriven,
}

impl EngineMode {
    /// Whether this mode runs the sleep scheduler at all.
    fn scheduled(self) -> bool {
        self != EngineMode::Stepped
    }
}

/// Execution geometry of a fleet run: worker threads, spatial shards and
/// the stepping mode.
///
/// Workers own shards round-robin (`shard % threads`), so `threads` is
/// effectively capped at the shard count. `shards == 0` means "match the
/// thread count" — the default the plain [`run_fleet`] entry points use.
/// All three knobs change only wall-clock behavior and the data-plane
/// sampling aggregates: the control-plane output is byte-identical at any
/// combination, and within the two scheduled modes the whole
/// [`FleetTrace`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetExec {
    /// Worker threads (clamped to `[1, n_ues]`, then to the shard count).
    pub threads: usize,
    /// Spatial shards (0 = match `threads`).
    pub shards: usize,
    /// Stepping engine (defaults to [`EngineMode::Stepped`]).
    pub engine: EngineMode,
}

impl FleetExec {
    /// `threads` workers over the same number of shards, fixed stepping.
    pub fn threads(threads: usize) -> FleetExec {
        FleetExec { threads, shards: 0, engine: EngineMode::Stepped }
    }

    /// Overrides the shard count.
    pub fn shards(mut self, shards: usize) -> FleetExec {
        self.shards = shards;
        self
    }

    /// Overrides the stepping engine.
    pub fn engine(mut self, engine: EngineMode) -> FleetExec {
        self.engine = engine;
        self
    }
}

/// Spatial partition of a deployment for the fleet engine: shard `s` owns a
/// contiguous band of the grid index's x-columns (and thereby every UE
/// positioned inside the band). Pure function of the deployment and the
/// shard count — every worker computes identical shard assignments.
#[derive(Debug, Clone)]
pub struct ShardMap {
    x0: i64,
    cols: i64,
    bin_m: f64,
    shards: usize,
}

impl ShardMap {
    /// Partitions `d`'s grid x-extent into `shards` contiguous bands.
    pub fn new(d: &Deployment, shards: usize) -> ShardMap {
        let (x0, cols, bin_m) = d.grid_x_columns();
        ShardMap { x0, cols, bin_m, shards: shards.max(1) }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `pos`. Positions outside the grid extent clamp to
    /// the nearest edge column, so every position maps to exactly one
    /// shard.
    pub fn shard_of(&self, pos: &Point) -> usize {
        let col = (((pos.x / self.bin_m).floor() as i64) - self.x0).clamp(0, self.cols - 1);
        if col == self.cols - 1 {
            // the last column always owns the last shard; the band formula
            // below cannot reach it when the grid is narrower than the
            // shard count (cols < shards)
            return self.shards - 1;
        }
        (col as usize * self.shards) / self.cols as usize
    }
}

/// A fleet of N UEs derived from one base scenario.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The base scenario: deployment seed, route, carrier, arch, workload.
    /// UE 0 runs it verbatim.
    pub base: Scenario,
    /// Fleet size (>= 1).
    pub n_ues: u32,
    /// Start offsets are hashed into `[0, stagger_s]` of simulated time
    /// (UE 0 always starts at tick 0).
    pub stagger_s: f64,
    /// Per-UE speed scale is hashed into `1.0 ± speed_jitter` (UE 0 keeps
    /// the base profile).
    pub speed_jitter: f64,
    /// Keep every per-UE [`Trace`] in the [`FleetTrace`] (memory scales
    /// with fleet size × duration; off by default — summaries only).
    pub keep_traces: bool,
}

impl FleetSpec {
    /// A fleet with the default heterogeneity: 20 s stagger window, ±10%
    /// speed jitter, summaries only.
    pub fn new(base: Scenario, n_ues: u32) -> FleetSpec {
        FleetSpec { base, n_ues, stagger_s: 20.0, speed_jitter: 0.1, keep_traces: false }
    }

    /// Sets the start-offset window, s.
    pub fn stagger_s(mut self, s: f64) -> FleetSpec {
        self.stagger_s = s;
        self
    }

    /// Sets the speed-jitter fraction.
    pub fn speed_jitter(mut self, j: f64) -> FleetSpec {
        self.speed_jitter = j;
        self
    }

    /// Keeps the per-UE traces in the fleet output.
    pub fn keep_traces(mut self, keep: bool) -> FleetSpec {
        self.keep_traces = keep;
        self
    }

    /// The derived plan for UE `ue`: scenario, global start tick, route
    /// direction. Pure function of the spec — workers on any shard compute
    /// identical plans.
    pub fn ue_plan(&self, ue: u32) -> UePlan {
        if ue == 0 {
            // the identity UE: base scenario verbatim, so a fleet of one
            // reproduces the single-UE engine byte for byte
            return UePlan { ue, scenario: self.base.clone(), start_tick: 0, reversed: false };
        }
        let meta = self.plan_meta(ue);
        let mut s = self.base.clone();
        s.seed = meta.seed;
        if meta.reversed {
            let mut pts = s.route.points().to_vec();
            pts.reverse();
            s.route = fiveg_geo::Polyline::new(pts);
        }
        let scale = 1.0 + self.speed_jitter * (2.0 * unit(meta.seed, 0x5BEED) - 1.0);
        s.speed = scale_speed(s.speed, scale);
        UePlan { ue, scenario: s, start_tick: meta.start_tick, reversed: meta.reversed }
    }

    /// The cheap part of [`FleetSpec::ue_plan`] — seed, start tick, route
    /// direction — computable without cloning the base scenario, so a
    /// million-UE fleet can schedule every UE up front and build the full
    /// plan only at activation time.
    pub(crate) fn plan_meta(&self, ue: u32) -> PlanMeta {
        if ue == 0 {
            return PlanMeta { seed: self.base.seed, start_tick: 0, reversed: false };
        }
        let seed = hash2(self.base.seed, 0xF1EE_7000 ^ ue as u64);
        let window = (self.stagger_s * self.base.sample_hz).max(0.0) as u64;
        let start_tick = if window == 0 { 0 } else { hash2(seed, 0x0FF5E7) % (window + 1) };
        PlanMeta { seed, start_tick, reversed: ue % 2 == 1 }
    }
}

/// Uniform draw in `[0, 1)` from a seeded hash.
fn unit(seed: u64, salt: u64) -> f64 {
    (hash2(seed, salt) >> 11) as f64 / (1u64 << 53) as f64
}

fn scale_speed(sp: SpeedProfile, f: f64) -> SpeedProfile {
    match sp {
        SpeedProfile::Constant { mps } => SpeedProfile::Constant { mps: mps * f },
        SpeedProfile::StopAndGo { peak_mps, period_s, stop_s } => {
            SpeedProfile::StopAndGo { peak_mps: peak_mps * f, period_s, stop_s }
        }
    }
}

/// One UE's derived scenario and schedule.
#[derive(Debug, Clone)]
pub struct UePlan {
    /// UE index within the fleet.
    pub ue: u32,
    /// The derived scenario (seed, route direction, speed).
    pub scenario: Scenario,
    /// Global tick at which this UE enters the simulation.
    pub start_tick: u64,
    /// Whether the route runs opposite to the base direction.
    pub reversed: bool,
}

/// The schedule-only slice of a [`UePlan`]: everything the coordinator and
/// the summaries need, without the cloned scenario.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanMeta {
    pub(crate) seed: u64,
    pub(crate) start_tick: u64,
    pub(crate) reversed: bool,
}

/// Fleet-run metadata (thread- and shard-count independent by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMeta {
    /// Fleet size.
    pub n_ues: u32,
    /// Base scenario seed (per-UE seeds derive from it).
    pub seed: u64,
    /// Carrier under test.
    pub carrier: Carrier,
    /// Deployment environment.
    pub env: Environment,
    /// Service architecture.
    pub arch: Arch,
    /// Tick rate, Hz.
    pub sample_hz: f64,
    /// Per-UE simulated-time cap, s.
    pub max_duration_s: f64,
    /// Start-offset window, s.
    pub stagger_s: f64,
    /// Speed-jitter fraction.
    pub speed_jitter: f64,
    /// Cells in the shared deployment.
    pub cells: u32,
    /// Global lockstep ticks executed.
    pub ticks: u64,
}

/// Per-UE result summary: the trace-level aggregates plus the fleet-only
/// congestion statistics that never reach a single-UE [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UeSummary {
    /// UE index within the fleet.
    pub ue: u32,
    /// The UE's derived scenario seed.
    pub seed: u64,
    /// Global tick at which the UE entered the simulation.
    pub start_tick: u64,
    /// Route direction relative to the base scenario.
    pub reversed: bool,
    /// Ticks the UE executed.
    pub ticks: u64,
    /// Distance traveled, m.
    pub traveled_m: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Failed handovers (fault injection).
    pub ho_failures: u64,
    /// Radio link failures.
    pub rlf_count: u64,
    /// Measurement reports sent.
    pub reports: u64,
    /// Mean per-tick downlink capacity, Mbps.
    pub mean_capacity_mbps: f64,
    /// Ticks where the serving share was < 1.0 (cell contention).
    pub loaded_ticks: u64,
    /// Mean serving share over the run (1.0 = never contended).
    pub mean_load_share: f64,
}

impl UeSummary {
    fn from_trace(ue: u32, meta: PlanMeta, trace: &Trace, loaded_ticks: u64, share_sum: f64) -> UeSummary {
        let ticks = trace.samples.len() as u64;
        let mean_cap = if trace.samples.is_empty() {
            0.0
        } else {
            trace.samples.iter().map(|s| s.capacity_mbps).sum::<f64>() / trace.samples.len() as f64
        };
        UeSummary {
            ue,
            seed: meta.seed,
            start_tick: meta.start_tick,
            reversed: meta.reversed,
            ticks,
            traveled_m: trace.meta.traveled_m,
            handovers: trace.handovers.len() as u64,
            ho_failures: trace.ho_failures,
            rlf_count: trace.rlf_count,
            reports: trace.reports.len() as u64,
            mean_capacity_mbps: mean_cap,
            loaded_ticks,
            mean_load_share: if ticks == 0 { 1.0 } else { share_sum / ticks as f64 },
        }
    }

    /// The summary-mode twin of [`UeSummary::from_trace`]: built from the
    /// engine's streamed [`UeRunStats`]. Field for field the same
    /// arithmetic — `capacity_sum` is the identical left-to-right fold the
    /// trace path computes over `samples` — so the two paths produce
    /// byte-identical summaries (held to that by a test below).
    fn from_stats(ue: u32, meta: PlanMeta, st: &UeRunStats) -> UeSummary {
        UeSummary {
            ue,
            seed: meta.seed,
            start_tick: meta.start_tick,
            reversed: meta.reversed,
            ticks: st.ticks,
            traveled_m: st.traveled_m,
            handovers: st.handovers,
            ho_failures: st.ho_failures,
            rlf_count: st.rlf_count,
            reports: st.reports,
            mean_capacity_mbps: if st.ticks == 0 { 0.0 } else { st.capacity_sum / st.ticks as f64 },
            loaded_ticks: st.loaded_ticks,
            mean_load_share: if st.ticks == 0 { 1.0 } else { st.share_sum / st.ticks as f64 },
        }
    }
}

/// Fleet-level load statistics, accumulated by the coordinator from the
/// fully-merged count table once per tick (single-threaded, so the scan
/// order — and the result — is independent of worker and shard count).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// Peak number of UEs stepping in one tick.
    pub peak_active_ues: u32,
    /// Peak concurrent attached UEs on one cell (both legs counted).
    pub peak_cell_ues: u32,
    /// Σ over ticks and cells of the attach count (UE·tick units; a
    /// dual-connected UE contributes on both serving cells).
    pub attach_ue_ticks: u64,
    /// The subset of `attach_ue_ticks` on cells holding >= 2 UEs — the
    /// share-reducing congestion the link layer actually sees.
    pub contended_ue_ticks: u64,
}

/// Scheduler statistics of a scheduled-mode run, identical between
/// [`EngineMode::Referee`] and [`EngineMode::EventDriven`] by
/// construction (both run the same schedule; the byte-compare gates hold
/// them to it). All counters are commutative per-UE sums, so they are
/// independent of thread and shard count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedSummary {
    /// UE·ticks skipped (event mode) or stepped without sampling (referee).
    pub skipped_ue_ticks: u64,
    /// Sleep windows entered.
    pub sleeps: u64,
    /// Sleeps cut short because a neighbor changed the serving cell's load
    /// share.
    pub load_wakes: u64,
    /// Realized sleep lengths, bucketed `<=4`, `<=16`, `<=64`, `>64` ticks.
    pub wake_hist: [u64; 4],
}

impl SchedSummary {
    fn record_wake(&mut self, missed: u64, load_wake: bool) {
        self.skipped_ue_ticks += missed;
        let b = match missed {
            0..=4 => 0,
            5..=16 => 1,
            17..=64 => 2,
            _ => 3,
        };
        self.wake_hist[b] += 1;
        if load_wake {
            self.load_wakes += 1;
        }
    }

    fn absorb(&mut self, other: &SchedSummary) {
        self.skipped_ue_ticks += other.skipped_ue_ticks;
        self.sleeps += other.sleeps;
        self.load_wakes += other.load_wakes;
        for (a, b) in self.wake_hist.iter_mut().zip(other.wake_hist) {
            *a += b;
        }
    }
}

/// The deterministic output of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Run metadata.
    pub meta: FleetMeta,
    /// Per-UE summaries, in UE order.
    pub ues: Vec<UeSummary>,
    /// Fleet-level load statistics.
    pub load: LoadSummary,
    /// Scheduler statistics (`None` for [`EngineMode::Stepped`] runs, and in
    /// pre-v3 reports).
    #[serde(default)]
    pub sched: Option<SchedSummary>,
    /// Per-UE traces, in UE order (empty unless [`FleetSpec::keep_traces`]).
    pub traces: Vec<Trace>,
}

/// Observer that observes nothing: the hook-free fleet path.
struct NoHook;
impl SimHook for NoHook {}

/// Runs a fleet with telemetry disabled. See [`run_fleet_instrumented`].
pub fn run_fleet(spec: &FleetSpec, threads: usize) -> FleetTrace {
    run_fleet_exec(spec, FleetExec::threads(threads))
}

/// Runs a fleet recording into a caller-owned [`Telemetry`] handle.
///
/// Per-UE telemetry runs on journal-less deterministic handles and is
/// absorbed into `tele` in UE order after the run (commutative counter and
/// histogram merges — see [`Telemetry::absorb`]), plus fleet-level
/// `fleet.*` counters. The returned [`FleetTrace`] is byte-identical at
/// any `threads`.
pub fn run_fleet_instrumented(spec: &FleetSpec, threads: usize, tele: &Telemetry) -> FleetTrace {
    run_fleet_exec_instrumented(spec, FleetExec::threads(threads), tele)
}

/// Runs a fleet with one [`SimHook`] per UE, built by `factory` (called
/// with the UE index). Hooks observe only — the trace is identical to
/// [`run_fleet`]'s — and are returned in UE order, so an invariant oracle
/// can be attached to every UE and queried afterwards.
pub fn run_fleet_observed<H, F>(spec: &FleetSpec, threads: usize, tele: &Telemetry, factory: F) -> (FleetTrace, Vec<H>)
where
    H: SimHook + Send,
    F: Fn(u32) -> H + Sync,
{
    run_fleet_exec_observed(spec, FleetExec::threads(threads), tele, factory)
}

/// [`run_fleet`] with explicit execution geometry.
pub fn run_fleet_exec(spec: &FleetSpec, exec: FleetExec) -> FleetTrace {
    run_fleet_exec_instrumented(spec, exec, &Telemetry::disabled())
}

/// [`run_fleet_instrumented`] with explicit execution geometry.
pub fn run_fleet_exec_instrumented(spec: &FleetSpec, exec: FleetExec, tele: &Telemetry) -> FleetTrace {
    run_fleet_core::<NoHook>(spec, exec, tele, None).0
}

/// [`run_fleet_observed`] with explicit execution geometry.
pub fn run_fleet_exec_observed<H, F>(
    spec: &FleetSpec,
    exec: FleetExec,
    tele: &Telemetry,
    factory: F,
) -> (FleetTrace, Vec<H>)
where
    H: SimHook + Send,
    F: Fn(u32) -> H + Sync,
{
    let (ft, hooks) = run_fleet_core(spec, exec, tele, Some(&factory));
    (ft, hooks.expect("factory was provided"))
}

/// Near-wheel slot count for each shard's [`EventQueue`]. The planner is
/// capped at `WHEEL_SLOTS - 2` ticks, so the longest wakeup offset is
/// `WHEEL_SLOTS - 1` and every entry stays in the queue's allocation-free
/// level 1 — the overflow level never fills in production.
const WHEEL_SLOTS: usize = 128;

/// Awake ticks to skip re-planning after a failed plan: a UE that just
/// proved un-sleepable rarely becomes sleepable one tick later, and the
/// planner's dry run is a few ticks' worth of channel math.
const PLAN_BACKOFF: u8 = 3;

/// Per-UE scheduler slot (scheduled modes only; dead weight of a few bytes
/// in [`EngineMode::Stepped`]).
#[derive(Clone, Copy, Default)]
struct SchedState {
    /// The UE is inside a sleep window.
    asleep: bool,
    /// The wheel marked this UE's wake tick as due.
    due: bool,
    /// Global tick at which the sleep window ends and the UE must step.
    wake_tick: u64,
    /// Global tick of the last real (sampled) step — the tick the UE fell
    /// asleep on.
    slept_tick: u64,
    /// Remaining awake ticks before the next plan attempt.
    backoff: u8,
    /// Serving cells currently published in the persistent load table
    /// (event mode), and the load-wake reference cells while asleep.
    pub_lte: Option<CellId>,
    pub_nr: Option<CellId>,
    /// Attach counts observed at the serving cells when the sleep began;
    /// a share-changing move wakes the UE early.
    load_lte: u32,
    load_nr: u32,
}

/// The shard-owned UE storage, struct-of-arrays: entry `j` of each vector
/// belongs to the same UE. Split into parallel vectors (rather than one
/// vector of structs) so a step can borrow `sims[j]` and `hooks[j]`
/// mutably at the same time.
struct ShardUes<'d, H: SimHook> {
    /// Fleet index of each resident UE.
    idx: Vec<u32>,
    sims: Vec<UeSim<'d>>,
    hooks: Vec<Option<H>>,
    teles: Vec<Telemetry>,
    /// Scheduler slot of each resident UE (SoA like the rest).
    scheds: Vec<SchedState>,
}

impl<'d, H: SimHook> ShardUes<'d, H> {
    fn push(&mut self, idx: u32, sim: UeSim<'d>, hook: Option<H>, tele: Telemetry, sched: SchedState) {
        self.idx.push(idx);
        self.sims.push(sim);
        self.hooks.push(hook);
        self.teles.push(tele);
        self.scheds.push(sched);
    }
}

/// One spatial shard: the UEs inside its band, their plain-integer count
/// table, and the shared radio-snapshot arena.
struct Shard<'d, H: SimHook> {
    /// UEs waiting on their start tick, `(start_tick, fleet idx)` sorted
    /// descending so due entries pop off the back cheapest-first.
    pending: Vec<(u64, u32)>,
    run: ShardUes<'d, H>,
    /// Shard-local per-cell attach counts for the current tick — plain
    /// integers; the coordinator folds and zeroes them at the boundary
    /// exchange.
    counts: Vec<u32>,
    /// UEs handed to another shard's mailbox since the last exchange.
    migrated: u64,
    /// The shard's shared per-(pos, t) radio memo: every resident UE
    /// refreshes and reads the same snapshot. A refresh fully recomputes
    /// from `(pos, t)` on miss, so sharing is invisible in the output —
    /// it only trades per-UE cache memory for a lower hit rate.
    arena: RadioPath,
    /// Calendar wheel (scheduled modes): the shard-local
    /// [`crate::wheel::EventQueue`], drained once per tick. The planner
    /// cap keeps every wakeup inside one revolution, so the queue's
    /// overflow level stays empty and steady-state scheduling allocates
    /// nothing.
    wheel: EventQueue,
    /// Fleet index → current SoA slot, maintained across `swap_remove`s so
    /// wheel entries survive residents shuffling (scheduled modes only).
    local_of: HashMap<u32, usize>,
    /// Event mode: `(cell, ±1)` attach changes this shard's awake steps
    /// produced during the current tick; the coordinator folds them into
    /// the persistent table at the boundary.
    deltas: Vec<(u32, i32)>,
    /// Event mode: departure deltas of UEs finalized this tick, applied
    /// one boundary later (a UE's final serving publish is still read by
    /// the next tick, exactly as in fixed mode).
    departs: Vec<(u32, i32)>,
    /// Scheduler statistics accumulated by this shard's residents.
    totals: SchedSummary,
}

impl<'d, H: SimHook> Shard<'d, H> {
    fn new(n_cells: usize, scheduled: bool) -> Shard<'d, H> {
        Shard {
            pending: Vec::new(),
            run: ShardUes {
                idx: Vec::new(),
                sims: Vec::new(),
                hooks: Vec::new(),
                teles: Vec::new(),
                scheds: Vec::new(),
            },
            counts: vec![0; n_cells],
            migrated: 0,
            arena: RadioPath::Snapshot(RadioSnapshot::new()),
            wheel: if scheduled { EventQueue::with_slots(WHEEL_SLOTS) } else { EventQueue::default() },
            local_of: HashMap::new(),
            deltas: Vec::new(),
            departs: Vec::new(),
            totals: SchedSummary::default(),
        }
    }
}

/// A UE in flight between shards: everything the target needs to resume
/// stepping it next tick.
struct Migrant<'d, H: SimHook> {
    idx: u32,
    sim: UeSim<'d>,
    hook: Option<H>,
    tele: Telemetry,
    /// Scheduler slot travels with the UE: in event mode it records which
    /// cells the UE has published in the persistent load table. Only awake
    /// UEs migrate (sleepers stay parked until their wake tick), so no
    /// wheel entry ever needs to move between shards.
    sched: SchedState,
}

struct UeOut<H> {
    summary: UeSummary,
    trace: Option<Box<Trace>>,
    tele: Telemetry,
    hook: Option<H>,
}

#[allow(clippy::type_complexity)]
fn run_fleet_core<H: SimHook + Send>(
    spec: &FleetSpec,
    exec: FleetExec,
    tele: &Telemetry,
    factory: Option<&(dyn Fn(u32) -> H + Sync)>,
) -> (FleetTrace, Option<Vec<H>>) {
    assert!(spec.n_ues >= 1, "a fleet needs at least one UE");
    let n = spec.n_ues as usize;
    let shards_n = if exec.shards == 0 { exec.threads.clamp(1, n) } else { exec.shards.max(1) };
    // a worker owns shards round-robin; more workers than shards would idle
    let threads = exec.threads.clamp(1, n).min(shards_n);
    let mode = exec.engine;
    let scheduled = mode.scheduled();
    let event = mode == EngineMode::EventDriven;
    let base = &spec.base;
    let d = Deployment::generate(&base.route, base.carrier, base.env, base.arch, base.seed);
    let n_cells = d.cells.len();
    let map = ShardMap::new(&d, shards_n);

    // schedule-only metas for every UE (the full plan, scenario clone
    // included, is built lazily at activation)
    let metas: Vec<PlanMeta> = (0..spec.n_ues).map(|i| spec.plan_meta(i)).collect();
    // telemetry wall-clock timers are not deterministic; per-UE handles run
    // counters only (journal-less: `absorb` never merges journals, and a
    // million per-UE ring buffers would be dead weight) — or fully off when
    // the fleet handle is off
    let per_ue_cfg = if tele.is_enabled() {
        TelemetryConfig { enabled: true, journal_capacity: 0, timing: false }
    } else {
        TelemetryConfig::OFF
    };

    // seed every UE into the shard owning its route start
    let pts = base.route.points();
    let first = pts.first().copied().unwrap_or(Point::new(0.0, 0.0));
    let last = pts.last().copied().unwrap_or(first);
    let mut shards: Vec<Mutex<Shard<'_, H>>> =
        (0..shards_n).map(|_| Mutex::new(Shard::new(n_cells, scheduled))).collect();
    for (i, m) in metas.iter().enumerate() {
        let start = if m.reversed { last } else { first };
        shards[map.shard_of(&start)].get_mut().unwrap().pending.push((m.start_tick, i as u32));
    }
    for sh in &mut shards {
        sh.get_mut().unwrap().pending.sort_unstable_by(|a, b| b.cmp(a));
    }
    let shards = &shards[..];

    // the merged read table: written only by the coordinator while every
    // worker is parked, read by every worker during the tick
    let global: Vec<AtomicU32> = (0..n_cells).map(|_| AtomicU32::new(0)).collect();
    // migration mailboxes, double-buffered by tick parity: a UE stepped at
    // tick k lands in the target's (k+1)%2 inbox and is drained exactly at
    // the start of tick k+1 — never the same tick it was stepped in
    let inboxes: Vec<[Mutex<Vec<Migrant<'_, H>>>; 2]> =
        (0..shards_n).map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())]).collect();
    let active = AtomicU32::new(0);
    let stepped = AtomicU32::new(0);
    let done = AtomicBool::new(false);
    // workers + coordinator; two waits per tick (merge point, release point)
    let barrier = Barrier::new(threads + 1);
    let results: Vec<Mutex<Option<UeOut<H>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let mut ticks = 0u64;
    let mut load = LoadSummary::default();
    let mut migrations = 0u64;

    std::thread::scope(|scope| {
        for w in 0..threads {
            let (d, metas, global, inboxes, active, stepped, done, barrier, results, map) =
                (&d, &metas, &global[..], &inboxes[..], &active, &stepped, &done, &barrier, &results, &map);
            let keep = spec.keep_traces;
            scope.spawn(move || {
                // per-worker plan buffers: plans are pure functions of UE
                // state, so recycling capacity across shards changes nothing
                let mut scratch = PlanScratch::default();
                for k in 0u64.. {
                    let read = CellLoadView::from_counts(global);
                    let count_at = |c: CellId| global[c.0 as usize].load(Ordering::Relaxed);
                    let mut still = 0u32;
                    let mut moved = 0u32;
                    for s in (w..shards_n).step_by(threads) {
                        let mut guard = shards[s].lock().unwrap();
                        let Shard { pending, run, counts, migrated, arena, wheel, local_of, deltas, departs, totals } =
                            &mut *guard;
                        // --- drain this tick's inbox: UEs that crossed into
                        // this shard at the end of tick k-1
                        let incoming = std::mem::take(&mut *inboxes[s][(k % 2) as usize].lock().unwrap());
                        for mg in incoming {
                            if scheduled {
                                local_of.insert(mg.idx, run.idx.len());
                            }
                            run.push(mg.idx, mg.sim, mg.hook, mg.tele, mg.sched);
                        }
                        // --- activate UEs whose start tick arrived
                        while pending.last().is_some_and(|&(st, _)| st <= k) {
                            let (_, i) = pending.pop().unwrap();
                            let plan = spec.ue_plan(i);
                            let ue_tele = Telemetry::new(per_ue_cfg);
                            let mut hook = factory.map(|f| f(i));
                            let sim = UeSim::new(
                                plan.scenario,
                                d,
                                &ue_tele,
                                arena,
                                hook.as_mut().map(|h| h as &mut dyn SimHook),
                                keep,
                            );
                            if scheduled {
                                local_of.insert(i, run.idx.len());
                            }
                            run.push(i, sim, hook, ue_tele, SchedState::default());
                        }
                        // --- calendar wheel: mark this tick's due wakeups.
                        // The queue filters stale entries itself (an early
                        // load-wake disarms below); the re-check against
                        // the live slot is belt and braces.
                        if scheduled {
                            wheel.pop_due(k, |fi| {
                                if let Some(&j) = local_of.get(&fi) {
                                    let sc = &mut run.scheds[j];
                                    if sc.asleep && sc.wake_tick == k {
                                        sc.due = true;
                                    }
                                }
                            });
                        }
                        // --- step every resident UE against the merged
                        // previous-tick load table
                        let ShardUes { idx, sims, hooks, teles, scheds } = run;
                        let mut j = 0;
                        while j < sims.len() {
                            let mut sample = true;
                            if sims[j].active() {
                                if scheduled && scheds[j].asleep {
                                    let sc = &mut scheds[j];
                                    let wake = if sc.due {
                                        true
                                    } else if sc.load_lte == u32::MAX {
                                        // first slept tick: the table now
                                        // includes this UE's own publish, so
                                        // record the load-wake reference
                                        sc.load_lte = sc.pub_lte.map_or(0, count_at);
                                        sc.load_nr = sc.pub_nr.map_or(0, count_at);
                                        false
                                    } else {
                                        sc.pub_lte.is_some_and(|c| load_share_shifted(sc.load_lte, count_at(c)))
                                            || sc.pub_nr.is_some_and(|c| load_share_shifted(sc.load_nr, count_at(c)))
                                    };
                                    if wake {
                                        let missed = k - sc.slept_tick - 1;
                                        totals.record_wake(missed, !sc.due);
                                        if !sc.due {
                                            // early load-wake: disarm the
                                            // queued wakeup; the ring entry
                                            // is dropped as stale
                                            wheel.cancel(idx[j]);
                                        }
                                        sc.asleep = false;
                                        sc.due = false;
                                        if missed > 0 {
                                            // declare the hook-stream gap so
                                            // checkers can tell a sanctioned
                                            // sleep from an overslept UE;
                                            // referee runs leave the same gap
                                            // (slept ticks are unsampled).
                                            // Quote the UE's own tick counter
                                            // (staggered UEs run behind the
                                            // fleet clock `k`); referee UEs
                                            // kept stepping unsampled, so
                                            // rewind theirs to the last tick
                                            // the hook actually saw
                                            let from = sims[j].ticks_stepped() - if event { 0 } else { missed };
                                            if let Some(h) = hooks[j].as_mut() {
                                                h.on_sleep(from, missed);
                                            }
                                        }
                                        if event {
                                            sims[j].catch_up(missed);
                                        }
                                    } else {
                                        assert!(k < sc.wake_tick, "calendar wheel missed a wakeup");
                                        if event {
                                            // skipped outright; still counted
                                            // as live so the tick bookkeeping
                                            // matches the fixed modes
                                            moved += 1;
                                            still += 1;
                                            j += 1;
                                            continue;
                                        }
                                        // referee: full control plane, no
                                        // sampling — byte-divergence here
                                        // means the wakeup bound was unsound
                                        sample = false;
                                    }
                                }
                                sims[j].step_sampled(
                                    hooks[j].as_mut().map(|h| h as &mut dyn SimHook),
                                    &read,
                                    arena,
                                    sample,
                                );
                                moved += 1;
                                let (lte, nr) = sims[j].serving();
                                if event {
                                    // persistent table: publish only serving
                                    // transitions as deltas
                                    let sc = &mut scheds[j];
                                    if lte != sc.pub_lte {
                                        if let Some(c) = sc.pub_lte {
                                            deltas.push((c.0, -1));
                                        }
                                        if let Some(c) = lte {
                                            deltas.push((c.0, 1));
                                        }
                                        sc.pub_lte = lte;
                                    }
                                    if nr != sc.pub_nr {
                                        if let Some(c) = sc.pub_nr {
                                            deltas.push((c.0, -1));
                                        }
                                        if let Some(c) = nr {
                                            deltas.push((c.0, 1));
                                        }
                                        sc.pub_nr = nr;
                                    }
                                } else {
                                    if let Some(id) = lte {
                                        counts[id.0 as usize] += 1;
                                    }
                                    if let Some(id) = nr {
                                        counts[id.0 as usize] += 1;
                                    }
                                }
                            }
                            if sims[j].active() {
                                still += 1;
                                // after a real (sampled) step, try to plan
                                // the next sleep window — BEFORE the
                                // migration check, so the schedule is a
                                // function of UE state alone: a UE that
                                // skipped planning whenever it crossed a
                                // shard band would sleep on different ticks
                                // at different shard counts
                                if scheduled && sample {
                                    let sc = &mut scheds[j];
                                    if sc.backoff > 0 {
                                        sc.backoff -= 1;
                                    } else {
                                        let win = sims[j].plan_sleep_with((WHEEL_SLOTS - 2) as u64, &mut scratch);
                                        if win > 0 {
                                            sc.asleep = true;
                                            sc.due = false;
                                            sc.slept_tick = k;
                                            sc.wake_tick = k + win + 1;
                                            let (l, nr2) = sims[j].serving();
                                            sc.pub_lte = l;
                                            sc.pub_nr = nr2;
                                            // load-wake reference recorded on
                                            // the first slept tick (sentinel)
                                            sc.load_lte = u32::MAX;
                                            sc.load_nr = u32::MAX;
                                            totals.sleeps += 1;
                                            wheel.schedule(idx[j], sc.wake_tick);
                                        } else {
                                            sc.backoff = PLAN_BACKOFF;
                                        }
                                    }
                                }
                                // sleeping UEs never migrate (including a
                                // UE that just planned above): in the
                                // referee their position drifts ahead of
                                // the (stale) event-mode position, and
                                // residency is invisible in the output
                                // anyway — both modes migrate at the wake
                                // tick
                                let target = map.shard_of(&sims[j].position());
                                if target != s && !scheds[j].asleep {
                                    // boundary crossed: hand the UE to the
                                    // target's next-tick mailbox
                                    let mg = Migrant {
                                        idx: idx.swap_remove(j),
                                        sim: sims.swap_remove(j),
                                        hook: hooks.swap_remove(j),
                                        tele: teles.swap_remove(j),
                                        sched: scheds.swap_remove(j),
                                    };
                                    if scheduled {
                                        local_of.remove(&mg.idx);
                                        if j < idx.len() {
                                            local_of.insert(idx[j], j);
                                        }
                                    }
                                    inboxes[target][((k + 1) % 2) as usize].lock().unwrap().push(mg);
                                    *migrated += 1;
                                    continue; // swap_remove put a new UE at j
                                }
                                j += 1;
                            } else {
                                if event {
                                    // retire the published cells one boundary
                                    // late: the final step's publish is still
                                    // read by the next tick, as in fixed mode
                                    let sc = &scheds[j];
                                    if let Some(c) = sc.pub_lte {
                                        departs.push((c.0, -1));
                                    }
                                    if let Some(c) = sc.pub_nr {
                                        departs.push((c.0, -1));
                                    }
                                }
                                let i = idx.swap_remove(j);
                                let sim = sims.swap_remove(j);
                                let hook = hooks.swap_remove(j);
                                let ue_tele = teles.swap_remove(j);
                                scheds.swap_remove(j);
                                if scheduled {
                                    local_of.remove(&i);
                                    if j < idx.len() {
                                        local_of.insert(idx[j], j);
                                    }
                                }
                                let out = finalize(metas[i as usize], i, sim, hook, ue_tele, keep);
                                *results[i as usize].lock().unwrap() = Some(out);
                            }
                        }
                        still += pending.len() as u32;
                    }
                    if still > 0 {
                        active.fetch_add(still, Ordering::Relaxed);
                    }
                    if moved > 0 {
                        stepped.fetch_add(moved, Ordering::Relaxed);
                    }
                    barrier.wait(); // tick k fully stepped on every shard
                    barrier.wait(); // coordinator merged counts + published verdict
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }

        // coordinator: the boundary exchange between the two barriers, while
        // every worker is parked — the only writer of `done`, the merged
        // table and the stats
        let mut pending_departs: Vec<(u32, i32)> = Vec::new();
        let mut stats_cache: Option<(u64, u64, u32)> = None;
        for k in 0u64.. {
            barrier.wait();
            let a = active.swap(0, Ordering::Relaxed);
            let m = stepped.swap(0, Ordering::Relaxed);
            // Count tick k only if it stepped a UE or left one alive
            // (pending or running). A final pass where both are zero —
            // every remaining UE was constructed already-inactive, e.g. a
            // zero-duration scenario — advanced nothing and must not
            // inflate the reported global tick count.
            if a > 0 || m > 0 {
                ticks = k + 1;
            }
            load.peak_active_ues = load.peak_active_ues.max(m);
            if event {
                // --- boundary exchange, persistent-table flavor: the
                // table carries over tick to tick (sleepers stay
                // published) and only transition deltas are folded in —
                // last tick's deferred departures first, then the deltas
                // every shard's awake steps produced during tick k. The
                // adds are commutative, so the table is independent of
                // shard count and equals the fixed-mode fold whenever the
                // schedule is sound.
                let mut changed = !pending_departs.is_empty();
                for (c, dl) in pending_departs.drain(..) {
                    let cur = global[c as usize].load(Ordering::Relaxed);
                    global[c as usize].store(cur.wrapping_add(dl as u32), Ordering::Relaxed);
                }
                for sh in shards.iter() {
                    let mut g = sh.lock().unwrap();
                    migrations += g.migrated;
                    g.migrated = 0;
                    changed |= !g.deltas.is_empty();
                    for (c, dl) in g.deltas.drain(..) {
                        let cur = global[c as usize].load(Ordering::Relaxed);
                        global[c as usize].store(cur.wrapping_add(dl as u32), Ordering::Relaxed);
                    }
                    pending_departs.append(&mut g.departs);
                }
                // a boundary with no deltas leaves the table — and its
                // per-tick stats contribution — exactly as last tick's
                if changed || stats_cache.is_none() {
                    let mut attach = 0u64;
                    let mut contended = 0u64;
                    let mut peak = 0u32;
                    for c in global.iter() {
                        let v = c.load(Ordering::Relaxed);
                        if v > 0 {
                            attach += v as u64;
                            peak = peak.max(v);
                            if v >= 2 {
                                contended += v as u64;
                            }
                        }
                    }
                    stats_cache = Some((attach, contended, peak));
                }
                let (attach, contended, peak) = stats_cache.unwrap();
                load.attach_ue_ticks += attach;
                load.contended_ue_ticks += contended;
                load.peak_cell_ues = load.peak_cell_ues.max(peak);
            } else {
                // --- boundary exchange: merged table = Σ shard tables. The
                // sums are commutative integer adds, so the merged counts are
                // independent of shard count; tick k+1 reads exactly what all
                // UEs published during tick k.
                for c in global.iter() {
                    c.store(0, Ordering::Relaxed);
                }
                for sh in shards.iter() {
                    let mut g = sh.lock().unwrap();
                    migrations += g.migrated;
                    g.migrated = 0;
                    for (i, cnt) in g.counts.iter_mut().enumerate() {
                        if *cnt > 0 {
                            let cur = global[i].load(Ordering::Relaxed);
                            global[i].store(cur + *cnt, Ordering::Relaxed);
                            *cnt = 0;
                        }
                    }
                }
                for c in global.iter() {
                    let v = c.load(Ordering::Relaxed);
                    if v > 0 {
                        load.attach_ue_ticks += v as u64;
                        load.peak_cell_ues = load.peak_cell_ues.max(v);
                        if v >= 2 {
                            load.contended_ue_ticks += v as u64;
                        }
                    }
                }
            }
            if a == 0 {
                done.store(true, Ordering::Relaxed);
            }
            barrier.wait();
            if a == 0 {
                break;
            }
        }
    });

    // scheduler statistics: commutative per-UE sums, so folding them in
    // shard order is independent of how UEs were distributed
    let mut sched_total = SchedSummary::default();
    if scheduled {
        for sh in shards.iter() {
            sched_total.absorb(&sh.lock().unwrap().totals);
        }
    }

    // collect in UE order: summaries, optional traces, telemetry, hooks
    let mut ues = Vec::with_capacity(n);
    let mut traces = Vec::new();
    let mut hooks = factory.map(|_| Vec::with_capacity(n));
    for slot in results {
        let out = slot.into_inner().unwrap().expect("every UE must be finalized");
        tele.absorb(&out.tele);
        ues.push(out.summary);
        if let Some(tr) = out.trace {
            traces.push(*tr);
        }
        if let (Some(hs), Some(h)) = (hooks.as_mut(), out.hook) {
            hs.push(h);
        }
    }
    tele.add("fleet.ues", spec.n_ues as u64);
    tele.add("fleet.ticks", ticks);
    tele.add("fleet.attach_ue_ticks", load.attach_ue_ticks);
    tele.add("fleet.contended_ue_ticks", load.contended_ue_ticks);
    // shard-count-dependent diagnostics (never part of the FleetTrace: the
    // trace is byte-identical at any geometry, migrations are not)
    tele.add("fleet.migrations", migrations);
    if scheduled {
        tele.add("fleet.skipped_ue_ticks", sched_total.skipped_ue_ticks);
        tele.add("fleet.sleeps", sched_total.sleeps);
        tele.add("fleet.load_wakes", sched_total.load_wakes);
    }

    let meta = FleetMeta {
        n_ues: spec.n_ues,
        seed: base.seed,
        carrier: base.carrier,
        env: base.env,
        arch: base.arch,
        sample_hz: base.sample_hz,
        max_duration_s: base.max_duration_s,
        stagger_s: spec.stagger_s,
        speed_jitter: spec.speed_jitter,
        cells: n_cells as u32,
        ticks,
    };
    let sched = if scheduled { Some(sched_total) } else { None };
    (FleetTrace { meta, ues, load, sched, traces }, hooks)
}

fn finalize<H: SimHook>(
    meta: PlanMeta,
    ue: u32,
    sim: UeSim<'_>,
    mut hook: Option<H>,
    tele: Telemetry,
    keep: bool,
) -> UeOut<H> {
    let (loaded_ticks, share_sum) = sim.load_stats();
    if keep {
        let trace = sim.into_trace(hook.as_mut().map(|h| h as &mut dyn SimHook));
        let summary = UeSummary::from_trace(ue, meta, &trace, loaded_ticks, share_sum);
        UeOut { summary, trace: Some(Box::new(trace)), tele, hook }
    } else {
        let stats = sim.finish_summary(hook.as_mut().map(|h| h as &mut dyn SimHook));
        let summary = UeSummary::from_stats(ue, meta, &stats);
        UeOut { summary, trace: None, tele, hook }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::{Arch, Carrier};

    fn base(seed: u64) -> Scenario {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, seed).duration_s(40.0).sample_hz(5.0).build()
    }

    #[test]
    fn fleet_of_one_is_single_run() {
        let s = base(11);
        let single = s.run();
        let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 1);
        assert_eq!(ft.traces.len(), 1);
        assert_eq!(ft.traces[0], single, "size-1 fleet must reproduce the single-UE engine exactly");
        assert_eq!(ft.load.contended_ue_ticks, 0, "one UE can never contend with itself");
        assert_eq!(ft.ues[0].mean_load_share, 1.0);
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let spec = FleetSpec::new(base(12), 7).keep_traces(true);
        let a = run_fleet(&spec, 1);
        let b = run_fleet(&spec, 3);
        assert_eq!(a, b, "fleet output must not depend on the worker count");
    }

    #[test]
    fn byte_identical_across_shard_counts() {
        let spec = FleetSpec::new(base(12), 7).keep_traces(true);
        let one = run_fleet_exec(&spec, FleetExec::threads(2).shards(1));
        for shards in [2usize, 5, 16] {
            let many = run_fleet_exec(&spec, FleetExec::threads(2).shards(shards));
            assert_eq!(one, many, "fleet output must not depend on the shard count ({shards} shards)");
        }
    }

    #[test]
    fn summary_mode_matches_trace_mode() {
        // the streamed summary path (keep_traces off) must produce the
        // same bytes `UeSummary::from_trace` computes from the full trace
        let with = run_fleet(&FleetSpec::new(base(18), 6).keep_traces(true), 2);
        let without = run_fleet(&FleetSpec::new(base(18), 6), 2);
        assert_eq!(with.ues, without.ues);
        assert_eq!(with.load, without.load);
        assert_eq!(with.meta, without.meta);
        assert!(without.traces.is_empty());
    }

    #[test]
    fn migrations_happen_and_are_counted() {
        let tele = Telemetry::new(TelemetryConfig::on());
        let spec = FleetSpec::new(base(19), 6);
        run_fleet_exec_instrumented(&spec, FleetExec::threads(2).shards(8), &tele);
        assert!(
            tele.counter_value("fleet.migrations") > 0,
            "freeway UEs crossing 8 shard bands must migrate at least once"
        );
        // a single shard can never migrate anyone
        let tele1 = Telemetry::new(TelemetryConfig::on());
        run_fleet_exec_instrumented(&spec, FleetExec::threads(1).shards(1), &tele1);
        assert_eq!(tele1.counter_value("fleet.migrations"), 0);
    }

    #[test]
    fn shard_map_is_monotone_and_total() {
        let s = base(20);
        let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
        let map = ShardMap::new(&d, 8);
        assert_eq!(map.shards(), 8);
        let mut last = 0usize;
        for i in 0..200 {
            let x = -20_000.0 + i as f64 * 250.0;
            let sh = map.shard_of(&Point::new(x, 137.0));
            assert!(sh < 8, "shard_of must stay in range");
            assert!(sh >= last, "shards must be monotone in x");
            last = sh;
        }
        assert_eq!(map.shard_of(&Point::new(-1e9, 0.0)), 0, "far-left clamps to shard 0");
        assert_eq!(map.shard_of(&Point::new(1e9, 0.0)), 7, "far-right clamps to the last shard");
    }

    #[test]
    fn plan_meta_matches_full_plan() {
        let spec = FleetSpec::new(base(21), 9);
        for ue in 0..9 {
            let plan = spec.ue_plan(ue);
            let meta = spec.plan_meta(ue);
            assert_eq!(meta.seed, plan.scenario.seed);
            assert_eq!(meta.start_tick, plan.start_tick);
            assert_eq!(meta.reversed, plan.reversed);
        }
    }

    #[test]
    fn load_coupling_only_reduces_capacity() {
        // all UEs share the route window (no stagger): cells are contended,
        // and the only effect coupling may have on the identity UE's trace
        // is a lower per-tick capacity — serving cells, handovers and
        // reports must match the solo run exactly (load does not feed back
        // into the control plane)
        let s = base(13);
        let solo = s.run();
        let ft = run_fleet(&FleetSpec::new(s, 12).stagger_s(0.0).keep_traces(true), 2);
        assert!(ft.load.contended_ue_ticks > 0, "12 co-routed UEs must contend: {:?}", ft.load);
        assert!(ft.load.peak_cell_ues >= 2);
        let ue0 = &ft.traces[0];
        assert_eq!(ue0.handovers, solo.handovers);
        assert_eq!(ue0.reports, solo.reports);
        assert_eq!(ue0.samples.len(), solo.samples.len());
        let mut lowered = 0;
        for (a, b) in ue0.samples.iter().zip(&solo.samples) {
            assert_eq!(a.lte_cell, b.lte_cell);
            assert_eq!(a.nr_cell, b.nr_cell);
            assert!(a.capacity_mbps <= b.capacity_mbps + 1e-12, "{} > {}", a.capacity_mbps, b.capacity_mbps);
            if a.capacity_mbps < b.capacity_mbps {
                lowered += 1;
            }
        }
        assert!(lowered > 0, "contention must actually lower some tick's capacity");
        assert!(ft.ues[0].mean_load_share < 1.0);
        assert!(ft.ues[0].loaded_ticks > 0);
    }

    #[test]
    fn fleet_ticks_count_only_advancing_ticks() {
        // the normal case: the last global tick is the one in which the
        // final UE takes its final step, so ticks == max(start + ue ticks)
        let ft = run_fleet(&FleetSpec::new(base(17), 5), 2);
        let last = ft.ues.iter().map(|u| u.start_tick + u.ticks).max().unwrap();
        assert_eq!(ft.meta.ticks, last, "no trailing tick beyond the last step");

        // the degenerate case: zero-duration scenarios construct every
        // UeSim already inactive, so the lone coordinator pass steps
        // nothing — it must not be counted as a global tick
        let dead = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 17).duration_s(0.0).sample_hz(5.0).build();
        let ft = run_fleet(&FleetSpec::new(dead, 3).stagger_s(0.0), 2);
        assert_eq!(ft.ues.iter().map(|u| u.ticks).sum::<u64>(), 0);
        assert_eq!(ft.meta.ticks, 0, "a fleet that never steps executed zero ticks");
    }

    #[test]
    fn staggered_ues_enter_late_and_summaries_line_up() {
        let ft = run_fleet(&FleetSpec::new(base(14), 5), 2);
        assert_eq!(ft.ues.len(), 5);
        assert_eq!(ft.ues[0].start_tick, 0);
        assert!(ft.ues.iter().enumerate().all(|(i, u)| u.ue == i as u32), "summaries must be in UE order");
        assert!(ft.ues.iter().skip(1).any(|u| u.start_tick > 0), "the stagger window should offset someone");
        assert!(ft.ues.iter().skip(1).any(|u| u.reversed), "odd UEs run the route backwards");
        let max_start = ft.ues.iter().map(|u| u.start_tick).max().unwrap();
        assert!(ft.meta.ticks >= max_start + 1);
        assert!(ft.traces.is_empty(), "keep_traces defaults to off");
    }

    #[test]
    fn telemetry_absorbs_per_ue_counters() {
        let tele = Telemetry::new(TelemetryConfig::on());
        let ft = run_fleet_instrumented(&FleetSpec::new(base(15), 4), 2, &tele);
        let total: u64 = ft.ues.iter().map(|u| u.ticks).sum();
        assert_eq!(tele.counter_value("sim.ticks"), total);
        assert_eq!(tele.counter_value("fleet.ues"), 4);
        assert_eq!(tele.counter_value("fleet.ticks"), ft.meta.ticks);
        assert_eq!(tele.counter_value("fleet.attach_ue_ticks"), ft.load.attach_ue_ticks);
        let hos: u64 = ft.ues.iter().map(|u| u.handovers).sum();
        assert_eq!(tele.counter_value("sim.handovers"), hos);
    }

    #[test]
    fn hooks_are_built_and_returned_per_ue() {
        struct TickCounter(u64);
        impl SimHook for TickCounter {
            fn on_tick(&mut self, _view: &crate::hook::TickView) {
                self.0 += 1;
            }
        }
        let (ft, hooks) =
            run_fleet_observed(&FleetSpec::new(base(16), 3), 2, &Telemetry::disabled(), |_| TickCounter(0));
        assert_eq!(hooks.len(), 3);
        for (h, u) in hooks.iter().zip(&ft.ues) {
            assert_eq!(h.0, u.ticks, "each hook must see exactly its UE's ticks");
        }
    }

    /// The committed-bench scenario family: SA downtown loop (SA is the
    /// sleepable architecture — NSA's B1 trigger is SINR-quantity and
    /// pins every UE to the fixed step).
    fn sa_city(seed: u64) -> Scenario {
        ScenarioBuilder::city_loop(Carrier::OpY, seed).arch(Arch::Sa).duration_s(45.0).sample_hz(5.0).build()
    }

    #[test]
    fn event_mode_matches_referee_byte_for_byte() {
        // the tentpole gate in miniature: the event-driven fleet (skips
        // sleeping UEs, catch_up on wake) must equal the referee (steps
        // them with sampling off, full control plane) exactly — at every
        // thread/shard combination
        let spec = FleetSpec::new(sa_city(201), 10);
        let referee = run_fleet_exec(&spec, FleetExec::threads(1).shards(1).engine(EngineMode::Referee));
        let sched = referee.sched.as_ref().expect("scheduled mode must report scheduler stats");
        assert!(sched.skipped_ue_ticks > 0, "an SA city fleet must actually sleep: {sched:?}");
        assert!(sched.sleeps > 0);
        for (threads, shards) in [(1usize, 1usize), (2, 4), (4, 16)] {
            let ev = run_fleet_exec(&spec, FleetExec::threads(threads).shards(shards).engine(EngineMode::EventDriven));
            assert_eq!(referee, ev, "event-driven fleet diverged at {threads} threads / {shards} shards");
        }
    }

    #[test]
    fn scheduled_modes_preserve_fixed_control_plane() {
        // scheduling may only change the data-plane sampling aggregates:
        // against the fixed engine, every control-plane field and the whole
        // load summary must be unchanged
        let spec = FleetSpec::new(sa_city(202), 12);
        let fixed = run_fleet_exec(&spec, FleetExec::threads(2).shards(4));
        assert!(fixed.sched.is_none(), "fixed mode must not report scheduler stats");
        for mode in [EngineMode::Referee, EngineMode::EventDriven] {
            let ft = run_fleet_exec(&spec, FleetExec::threads(2).shards(4).engine(mode));
            assert_eq!(ft.meta, fixed.meta, "{mode:?} changed the run metadata");
            assert_eq!(ft.load, fixed.load, "{mode:?} changed the load summary");
            for (a, b) in ft.ues.iter().zip(&fixed.ues) {
                assert_eq!(a.ue, b.ue);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.start_tick, b.start_tick);
                assert_eq!(a.reversed, b.reversed);
                assert_eq!(a.ticks, b.ticks, "UE {} tick count drifted under {mode:?}", a.ue);
                assert_eq!(a.traveled_m, b.traveled_m, "UE {} position drifted under {mode:?}", a.ue);
                assert_eq!(a.handovers, b.handovers, "UE {} handovers drifted under {mode:?}", a.ue);
                assert_eq!(a.ho_failures, b.ho_failures);
                assert_eq!(a.rlf_count, b.rlf_count);
                assert_eq!(a.reports, b.reports, "UE {} reports drifted under {mode:?}", a.ue);
            }
        }
    }

    #[test]
    fn nsa_fleet_never_sleeps_but_still_matches() {
        // NSA UEs are ineligible (B1 is SINR-quantity): the scheduled modes
        // degrade to the fixed engine with zero sleeps — and must still be
        // byte-identical to each other
        let spec = FleetSpec::new(base(23), 6);
        let referee = run_fleet_exec(&spec, FleetExec::threads(2).shards(2).engine(EngineMode::Referee));
        let ev = run_fleet_exec(&spec, FleetExec::threads(2).shards(2).engine(EngineMode::EventDriven));
        assert_eq!(referee, ev);
        let sched = referee.sched.as_ref().unwrap();
        assert_eq!(sched.sleeps, 0, "NSA fleets must stay on the fixed step: {sched:?}");
        assert_eq!(sched.skipped_ue_ticks, 0);
    }

    #[test]
    fn keep_traces_disables_sleeping_entirely() {
        // trace retention samples every tick, so a keep_traces fleet never
        // sleeps — and the event-driven trace equals the fixed one exactly
        let spec = FleetSpec::new(sa_city(204), 4).keep_traces(true);
        let fixed = run_fleet_exec(&spec, FleetExec::threads(2).shards(2));
        let ev = run_fleet_exec(&spec, FleetExec::threads(2).shards(2).engine(EngineMode::EventDriven));
        assert_eq!(ev.sched.as_ref().unwrap().sleeps, 0);
        assert_eq!(ev.traces, fixed.traces, "with sleeping off the full traces must match the fixed engine");
        assert_eq!(ev.ues, fixed.ues);
        assert_eq!(ev.load, fixed.load);
    }

    #[test]
    fn load_wakes_fire_and_stay_deterministic() {
        // satellite: a sleeping UE must be woken early when migrating
        // neighbors change its serving cell's load share. Co-routed UEs
        // with zero stagger churn cell populations constantly; across a
        // seed sweep at least one sleep must end in a load-wake, and every
        // run must stay mode- and geometry-deterministic.
        let mut load_wakes = 0u64;
        for seed in [205u64, 206, 207, 208] {
            let spec = FleetSpec::new(sa_city(seed), 12).stagger_s(0.0);
            let referee = run_fleet_exec(&spec, FleetExec::threads(1).shards(2).engine(EngineMode::Referee));
            let ev = run_fleet_exec(&spec, FleetExec::threads(2).shards(8).engine(EngineMode::EventDriven));
            assert_eq!(referee, ev, "load-coupled wakeups diverged at seed {seed}");
            load_wakes += referee.sched.as_ref().unwrap().load_wakes;
        }
        assert!(load_wakes > 0, "no sleep was ever cut short by a neighbor's load change across the seed sweep");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// The tentpole equivalence, property-tested: for any seed and
            /// architecture, a fleet of size 1 reproduces the single-UE
            /// `run` of the same scenario exactly (the JSON byte-identity
            /// variant lives in `tests/fleet_determinism.rs`).
            #[test]
            fn fleet_of_one_matches_run(seed in 0u64..1000, arch_pick in 0u8..3) {
                let arch = [Arch::Nsa, Arch::Sa, Arch::Lte][arch_pick as usize];
                let s = ScenarioBuilder::freeway(Carrier::OpY, arch, 2.0, seed)
                    .duration_s(30.0)
                    .sample_hz(5.0)
                    .build();
                let single = s.run();
                for threads in [1usize, 2] {
                    let ft = run_fleet(&FleetSpec::new(s.clone(), 1).keep_traces(true), threads);
                    prop_assert_eq!(&ft.traces[0], &single);
                }
            }
        }
    }
}
