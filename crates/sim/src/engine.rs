//! The tick loop: mobility → channel → measurements → policy → HO state
//! machine → link → trace.

// Wakeup-bound planner for the event-driven fleet scheduler. A child module
// of the engine so it can read `UeSim`'s private state directly instead of
// widening the engine's API surface.
#[path = "wakeup.rs"]
pub(crate) mod wakeup;

use crate::fault::FaultConfig;
use crate::fleet::CellLoadView;
use crate::hook::{AttachReason, ServingCells, SimHook, TickView};
use crate::scenario::{Scenario, Workload};
use crate::trace::{CellDictEntry, FlowLog, MrRecord, Trace, TraceMeta, TraceSample};
use fiveg_geo::Point;
use fiveg_link::{compose, Bearer, BulkFlow, CbrFlow, DownlinkState, PathOutcome};
use fiveg_radio::rrs::{compute_rrs_with_mw, dbm_to_mw};
use fiveg_radio::{hash2, shannon_capacity_mbps, BandClass, DetRng, Rrs};
use fiveg_ran::policy::PolicyContext;
use fiveg_ran::{
    Arch, CellId, Deployment, HandoverRecord, HoEvent, HoPolicy, MeasEngine, Measurement, PciTable, RadioSnapshot,
    RadioTech, RanStateMachine,
};
use fiveg_rrc::{EventConfig, Pci, RrcMessage, SignalingTally};
use fiveg_telemetry::{Counter, Event, HistogramHandle, Phase, Telemetry};
use fiveg_ue::{MobilityDriver, RrcConnState};

/// Fraction of the cell capacity one user gets. High: the paper measures at
/// low-congestion times on purpose ("including night time: 12am-4am ... we
/// reduce the impact of crowds and congestion", §9).
const FAIR_SHARE: f64 = 0.85;
/// Carrier-aggregation factor for the LTE leg: "a UE can subscribe to
/// multiple secondary cells for higher bandwidths" (§2); typical US
/// deployments bond 2–4 LTE component carriers.
const LTE_CA_FACTOR: f64 = 2.5;
/// EN-DC aggregation factor for low-band NR legs: thin 10–20 MHz carriers
/// are always bonded with supplemental carriers in deployment.
const NR_LOW_CA_FACTOR: f64 = 3.0;
/// Mid-band NR aggregation (the 60–100 MHz carrier is the capacity).
const NR_MID_CA_FACTOR: f64 = 1.2;
/// How far to look for candidate cells, m.
const SEARCH_RADIUS_M: f64 = 8_000.0;
/// RSRP below which the serving link fails (radio link failure).
const RLF_DBM: f64 = -124.0;

/// Measurements of one radio leg at one tick. One instance per leg lives for
/// the whole run; [`fill_leg_view`] clears and refills it each tick so the
/// buffers (neighbors, candidate table) are reused, not reallocated.
struct LegView {
    /// Serving measurement (if attached on this leg).
    serving: Option<Measurement>,
    /// Strongest other cells, up to 4.
    neighbors: Vec<Measurement>,
    /// Serving SINR for the capacity model.
    serving_sinr_db: f64,
    /// PCI → cell resolution for this tick.
    candidates: PciTable,
}

impl LegView {
    fn new() -> Self {
        LegView { serving: None, neighbors: Vec::new(), serving_sinr_db: -20.0, candidates: PciTable::new() }
    }
}

/// Reused scratch for [`fill_leg_view`]: the ranked candidate list and the
/// activity-scaled interference terms (mW) aligned with it, entry for entry.
#[derive(Default)]
struct LegScratch {
    ranked: Vec<(CellId, f64)>,
    mw_adj: Vec<f64>,
}

/// Fixed-capacity inline per-band counter — replaces the transient
/// `HashMap<&str, usize>` the leg view used to rebuild twice per tick. A leg
/// sees at most a handful of bands (bounded by the carrier profile), so a
/// linear scan wins and nothing allocates.
struct BandTally {
    entries: [(&'static str, u8); 16],
    len: usize,
}

impl BandTally {
    fn new() -> Self {
        BandTally { entries: [("", 0); 16], len: 0 }
    }

    /// True when `name` has been taken fewer than `cap` times so far,
    /// incrementing its count — the `entry().or_insert()`-then-compare idiom
    /// it replaces.
    fn take_below(&mut self, name: &'static str, cap: u8) -> bool {
        for e in self.entries[..self.len].iter_mut() {
            if e.0 == name {
                if e.1 < cap {
                    e.1 += 1;
                    return true;
                }
                return false;
            }
        }
        assert!(self.len < self.entries.len(), "more than {} bands in one leg", self.entries.len());
        self.entries[self.len] = (name, 1);
        self.len += 1;
        true
    }
}

/// How the tick loop obtains per-(pos, t) radio strength data.
pub(crate) enum RadioPath {
    /// One shared [`RadioSnapshot`] refreshed per tick: every in-radius
    /// cell's `rx_dbm` is computed exactly once and all consumers (leg
    /// views, initial attach, RLF recovery) read the same table. The
    /// default.
    Snapshot(RadioSnapshot),
    /// The retained naive path: every consumer performs its own
    /// [`Deployment::strongest`] scan, as the pre-snapshot engine did. Kept
    /// as the referee for the trace-equivalence regression test and as the
    /// baseline side of the tick-throughput benchmark.
    Reference,
}

/// Minimum carrier frequency for an EN-DC anchor cell, MHz. Under NSA the
/// LTE leg only anchors on mid-band carriers ("its coupled control plane
/// (NSA-4C) still uses the mid-band", §6.1).
const ANCHOR_MIN_FREQ_MHZ: f64 = 1700.0;

/// Computes RRS for every relevant cell of one leg into `view`, reusing the
/// view's and `scratch`'s buffers across ticks. `all` is the leg's cells
/// strongest-first — the per-tick snapshot slice, or a fresh
/// [`Deployment::strongest`] result on the reference path; both orderings are
/// identical, so the two paths produce identical views.
#[allow(clippy::too_many_arguments)]
fn fill_leg_view(
    view: &mut LegView,
    scratch: &mut LegScratch,
    d: &Deployment,
    all: &[(CellId, f64)],
    pos: &Point,
    t: f64,
    nr: bool,
    serving: Option<CellId>,
    anchor_only: bool,
) {
    view.serving = None;
    view.neighbors.clear();
    view.candidates.clear();
    scratch.ranked.clear();
    scratch.mw_adj.clear();

    // UEs measure each configured carrier frequency separately: keep the
    // top-3 cells per band so a strong band cannot crowd the others out of
    // the measured set (inter-frequency events need those entries).
    let mut per_band = BandTally::new();
    let mut serving_rx = None;
    for &(id, rx) in all {
        if anchor_only && d.cell(id).band.freq_mhz < ANCHOR_MIN_FREQ_MHZ {
            continue;
        }
        if per_band.take_below(d.cell(id).band.name, 3) {
            scratch.ranked.push((id, rx));
            if Some(id) == serving {
                serving_rx = Some(rx);
            }
        }
        if scratch.ranked.len() >= 12 {
            break;
        }
    }
    // make sure the serving cell is present even if it fell out of the top-8
    if let Some(s) = serving {
        if serving_rx.is_none() {
            let rx = d.cell(s).rx_dbm(pos, t);
            scratch.ranked.push((s, rx));
            serving_rx = Some(rx);
        }
    }

    // Co-channel interference terms: same band only, scaled by the neighbor
    // activity factor — interfering cells do not transmit full power on the
    // UE's resource blocks all the time (scheduling + load). Precomputed
    // once per ranked entry instead of per (candidate × interferer) pair.
    const ACTIVITY_DB: f64 = -5.5; // ≈ 28% duty on the interfered PRBs
    for &(_, rx) in scratch.ranked.iter() {
        scratch.mw_adj.push(dbm_to_mw(rx + ACTIVITY_DB));
    }
    let (ranked, mw_adj) = (&scratch.ranked, &scratch.mw_adj);
    let rrs_of = |id: CellId, rx: f64| -> Rrs {
        let me = d.cell(id);
        let mut i_mw = 0.0;
        for (k, &(other, _)) in ranked.iter().enumerate() {
            if other != id && d.cell(other).band.name == me.band.name {
                i_mw += mw_adj[k];
            }
        }
        compute_rrs_with_mw(rx, i_mw, me.noise_dbm)
    };

    for &(id, _) in ranked.iter() {
        view.candidates.insert_first(d.cell(id).pci, id);
    }

    let group_of = |id: CellId| -> Option<u32> {
        // NR cells under NSA carry their gNB (tower) as the A3 measurement
        // group; SA and LTE measure across sites
        if nr && d.arch == fiveg_ran::Arch::Nsa {
            Some(d.cell(id).tower.0)
        } else {
            None
        }
    };
    // the serving entry was tracked (or appended) above, so the measurement
    // is constructed directly — no re-find in `ranked`, nothing to unwrap
    view.serving = match (serving, serving_rx) {
        (Some(s), Some(rx)) => Some(Measurement {
            pci: d.cell(s).pci,
            rrs: rrs_of(s, rx),
            freq_mhz: d.cell(s).band.freq_mhz,
            group: group_of(s),
        }),
        _ => None,
    };
    view.serving_sinr_db = view.serving.map(|m| m.rrs.sinr_db).unwrap_or(-20.0);

    // neighbor list: up to 2 per band (cap 8) so intra-frequency candidates
    // are always measurable even when another band dominates the top of the
    // ranking
    let mut nb_per_band = BandTally::new();
    for &(id, rx) in ranked.iter() {
        if Some(id) == serving {
            continue;
        }
        if nb_per_band.take_below(d.cell(id).band.name, 2) {
            view.neighbors.push(Measurement {
                pci: d.cell(id).pci,
                rrs: rrs_of(id, rx),
                freq_mhz: d.cell(id).band.freq_mhz,
                group: group_of(id),
            });
        }
        if view.neighbors.len() >= 8 {
            break;
        }
    }
}

/// Runs a scenario to completion.
pub fn run(s: &Scenario) -> Trace {
    run_instrumented(s, &Telemetry::new(s.telemetry))
}

/// Runs a scenario recording into a caller-owned [`Telemetry`] handle.
///
/// With a disabled handle this is `run` exactly (every telemetry call is an
/// `Option` check). With an enabled handle, counters/histograms/journal
/// events are recorded at sim-time and per-phase wall-clock timers wrap the
/// tick-loop stages; none of it feeds back into the simulation, so the
/// returned `Trace` is identical either way.
pub fn run_instrumented(s: &Scenario, tele: &Telemetry) -> Trace {
    run_with_path(s, tele, RadioPath::Snapshot(RadioSnapshot::new()), None)
}

/// Runs a scenario with a [`SimHook`] observing every state transition (see
/// [`crate::hook`]). Hooks observe only — the returned trace is byte-identical
/// to [`run`]'s.
pub fn run_hooked(s: &Scenario, tele: &Telemetry, hook: &mut dyn SimHook) -> Trace {
    run_with_path(s, tele, RadioPath::Snapshot(RadioSnapshot::new()), Some(hook))
}

/// [`run_reference`] with a [`SimHook`] attached — the observer counterpart
/// of [`run_hooked`] on the naive radio path.
pub fn run_reference_hooked(s: &Scenario, tele: &Telemetry, hook: &mut dyn SimHook) -> Trace {
    run_with_path(s, tele, RadioPath::Reference, Some(hook))
}

/// Runs a scenario on the retained naive radio path: every consumer performs
/// its own [`Deployment::strongest`] scan instead of reading the per-tick
/// [`RadioSnapshot`]. Produces a byte-identical [`Trace`] to [`run`] — the
/// trace-equivalence integration test holds the two paths to that — and
/// serves as the baseline side of the tick-throughput benchmark.
pub fn run_reference(s: &Scenario) -> Trace {
    run_reference_instrumented(s, &Telemetry::new(s.telemetry))
}

/// [`run_reference`] recording into a caller-owned [`Telemetry`] handle.
pub fn run_reference_instrumented(s: &Scenario, tele: &Telemetry) -> Trace {
    run_with_path(s, tele, RadioPath::Reference, None)
}

/// Longest sleep window the single-UE event-driven loop requests — the
/// same cap the fleet's calendar wheel imposes (`WHEEL_SLOTS - 2`), so a
/// UE plans identical windows whether it runs solo or in a fleet.
const DES_MAX_WINDOW: u64 = 126;

/// Control-plane summary of a summary-mode run, plus the event-driven
/// scheduler's work accounting. Every control field is invariant across
/// [`run_des`] and [`run_stepped_summary`] — `tests/des_equivalence.rs`
/// holds them to that — while `sleeps`/`skipped_ticks` describe how much
/// of the run the DES loop fast-forwarded (always `0` for the stepped
/// twin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesSummary {
    /// Ticks simulated (skipped ticks included — work counts must not
    /// depend on the engine).
    pub ticks: u64,
    /// Ticks replayed in closed form by `UeSim::catch_up`.
    pub skipped_ticks: u64,
    /// Granted sleep windows.
    pub sleeps: u64,
    /// Distance traveled, m.
    pub traveled_m: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Failed handovers (fault injection).
    pub ho_failures: u64,
    /// Radio link failures.
    pub rlf_count: u64,
    /// Measurement reports sent.
    pub reports: u64,
}

impl DesSummary {
    fn from_stats(st: &UeRunStats, sleeps: u64, skipped_ticks: u64) -> DesSummary {
        DesSummary {
            ticks: st.ticks,
            skipped_ticks,
            sleeps,
            traveled_m: st.traveled_m,
            handovers: st.handovers,
            ho_failures: st.ho_failures,
            rlf_count: st.rlf_count,
            reports: st.reports,
        }
    }

    /// The engine-invariant fields, for direct equality asserts between a
    /// DES and a stepped run of the same scenario.
    pub fn control(&self) -> (u64, f64, u64, u64, u64, u64) {
        (self.ticks, self.traveled_m, self.handovers, self.ho_failures, self.rlf_count, self.reports)
    }

    /// Fraction of simulated ticks that were fast-forwarded.
    pub fn skip_ratio(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.skipped_ticks as f64 / self.ticks as f64
        }
    }
}

/// Runs a scenario event-driven in summary mode: between sampled steps the
/// UE asks `wakeup::plan_sleep` for a provably-inert window and
/// `UeSim::step_to` replays it in closed form. No per-tick samples are
/// recorded — a UE recording a trace is never planner-eligible (the data
/// plane needs every tick), so the event-driven single-UE engine is only
/// offered in summary mode, where its control plane is tick-for-tick the
/// stepped engine's.
pub fn run_des(s: &Scenario) -> DesSummary {
    run_des_instrumented(s, &Telemetry::new(s.telemetry))
}

/// [`run_des`] recording into a caller-owned [`Telemetry`] handle.
pub fn run_des_instrumented(s: &Scenario, tele: &Telemetry) -> DesSummary {
    let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
    let mut radio = RadioPath::Snapshot(RadioSnapshot::new());
    let mut ue = UeSim::new(s.clone(), &d, tele, &mut radio, None, false);
    let mut scratch = wakeup::PlanScratch::default();
    let (sleeps, skipped) = ue.step_to(u64::MAX, None, &CellLoadView::SOLO, &mut radio, &mut scratch);
    DesSummary::from_stats(&ue.finish_summary(None), sleeps, skipped)
}

/// The stepped oracle twin of [`run_des`]: the same summary-mode run with
/// every tick stepped and sampled. `sleeps`/`skipped_ticks` are zero by
/// construction; all other fields must match [`run_des`]'s exactly.
pub fn run_stepped_summary(s: &Scenario) -> DesSummary {
    let tele = Telemetry::new(s.telemetry);
    let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
    let mut radio = RadioPath::Snapshot(RadioSnapshot::new());
    let mut ue = UeSim::new(s.clone(), &d, &tele, &mut radio, None, false);
    while ue.active() {
        ue.step(None, &CellLoadView::SOLO, &mut radio);
    }
    DesSummary::from_stats(&ue.finish_summary(None), 0, 0)
}

fn run_with_path(
    s: &Scenario,
    tele: &Telemetry,
    mut radio: RadioPath,
    mut hook: Option<&mut (dyn SimHook + '_)>,
) -> Trace {
    let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
    let mut ue = UeSim::new(s.clone(), &d, tele, &mut radio, hook.as_deref_mut(), true);
    while ue.active() {
        ue.step(hook.as_deref_mut(), &CellLoadView::SOLO, &mut radio);
    }
    ue.into_trace(hook)
}

/// Flat end-of-run statistics, produced by [`UeSim::finish_summary`] when the
/// caller never needs the full [`Trace`] (fleet runs with `keep_traces`
/// off). Every field is bit-identical to what the same run's `Trace` would
/// have yielded: counts are incremented at the exact sites that push the
/// corresponding records, and `capacity_sum` accumulates left-to-right in
/// tick order — the same fold `UeSummary::from_trace` performs over
/// `samples`.
pub(crate) struct UeRunStats {
    pub ticks: u64,
    pub traveled_m: f64,
    pub handovers: u64,
    pub ho_failures: u64,
    pub rlf_count: u64,
    pub reports: u64,
    pub capacity_sum: f64,
    pub loaded_ticks: u64,
    pub share_sum: f64,
}

/// One UE's simulation state, steppable one tick at a time against a
/// borrowed immutable [`Deployment`].
///
/// The single-UE entry points ([`run`], [`run_reference`], …) are a thin
/// loop over [`UeSim::step`] with [`CellLoadView::SOLO`], so extracting the
/// state machine out of the old monolithic loop cannot change their traces
/// (`tests/trace_equivalence.rs` holds them to that). The fleet engine
/// ([`crate::fleet`]) drives many `UeSim`s in lockstep against one shared
/// deployment, feeding each step the previous tick's per-cell attach counts
/// through a [`CellLoadView`].
pub(crate) struct UeSim<'d> {
    s: Scenario,
    d: &'d Deployment,
    tele: Telemetry,
    mob: MobilityDriver,
    sm: RanStateMachine,
    policy: HoPolicy,
    tally: SignalingTally,
    conn: RrcConnState,
    fault_rng: DetRng,
    faults: FaultConfig,
    ticks_ctr: Counter,
    reports_ctr: Counter,
    handovers_ctr: Counter,
    rlf_ctr: Counter,
    mr_loss_ctr: Counter,
    ho_fail_ctr: Counter,
    ho_duration_h: HistogramHandle,
    ho_t1_h: HistogramHandle,
    ho_t2_h: HistogramHandle,
    cap_h: HistogramHandle,
    lte_engine: MeasEngine,
    nr_engine: MeasEngine,
    configs_seen: Vec<EventConfig>,
    dt: f64,
    t: f64,
    tick: u64,
    had_scg: bool,
    // per-leg views, scratch and the merged candidate table persist across
    // ticks: the hot loop refills them instead of reallocating
    lte_leg: LegView,
    nr_leg: LegView,
    scratch: LegScratch,
    merged: PciTable,
    /// When false (fleet summary mode) the per-tick sample and the report
    /// log are not retained: the vectors stay empty and the summary
    /// aggregates below are streamed instead. Everything that feeds back
    /// into the simulation is untouched, so the run itself is bit-identical
    /// either way.
    record_samples: bool,
    samples: Vec<TraceSample>,
    reports_log: Vec<MrRecord>,
    handovers: Vec<HandoverRecord>,
    /// Count of retained-or-skipped report records; equals
    /// `reports_log.len()` whenever `record_samples` is true.
    reports_n: u64,
    /// Count of completed handovers; equals `handovers.len()`.
    handovers_n: u64,
    /// Σ per-tick `capacity_mbps` in tick order — the same left-to-right
    /// fold `UeSummary::from_trace` performs over `samples`.
    cap_sum: f64,
    rlf_count: u64,
    ho_failures: u64,
    bulk: Option<BulkFlow>,
    cbr: Option<CbrFlow>,
    /// Ticks where the serving share was < 1.0 (fleet cell contention).
    loaded_ticks: u64,
    /// Σ per-tick serving share (min across attached legs); equals `tick`
    /// in any uncontended run. Fleet-level congestion stat only — never
    /// reaches the [`Trace`].
    share_sum: f64,
}

impl<'d> UeSim<'d> {
    /// Builds the UE state and performs the initial attach (strongest cell
    /// of the control-plane technology at the route start).
    ///
    /// `radio` is borrowed, not owned: the fleet engine shares one
    /// [`RadioSnapshot`] arena across every UE of a shard (the snapshot is a
    /// pure memo of `(pos, t)`, so sharing cannot change any UE's bytes),
    /// while the single-UE paths pass a path they own. `record_samples`
    /// selects between full trace retention and streaming summary mode.
    pub(crate) fn new(
        s: Scenario,
        d: &'d Deployment,
        tele: &Telemetry,
        radio: &mut RadioPath,
        mut hook: Option<&mut (dyn SimHook + '_)>,
        record_samples: bool,
    ) -> UeSim<'d> {
        let mob = MobilityDriver::new(s.route.clone(), s.speed);
        let mut sm = RanStateMachine::new(s.arch, hash2(s.seed, 0x5A5A));
        let mut policy = HoPolicy::new(s.carrier, s.arch);
        sm.set_telemetry(tele.clone());
        policy.set_telemetry(tele.clone());
        let mut tally = SignalingTally::new();
        let conn = RrcConnState::with_keepalive();
        let fault_rng = DetRng::new(hash2(s.seed, 0xFA17));
        // run on the clamped fault config so out-of-range probabilities behave
        // like their nearest valid counterpart (see FaultConfig::clamped)
        let faults = s.faults.clamped();

        let ticks_ctr = tele.counter("sim.ticks");
        let reports_ctr = tele.counter("sim.reports");
        let handovers_ctr = tele.counter("sim.handovers");
        let rlf_ctr = tele.counter("sim.rlf");
        let mr_loss_ctr = tele.counter("faults.mr_loss");
        let ho_fail_ctr = tele.counter("faults.ho_failure");
        let ho_duration_h = tele.histogram("ho.duration_ms");
        let ho_t1_h = tele.histogram("ho.t1_ms");
        let ho_t2_h = tele.histogram("ho.t2_ms");
        let cap_h = tele.histogram("link.capacity_mbps");

        // initial attach: strongest cell of the control-plane technology
        let t0 = 0.0;
        let start = mob.position();
        {
            let nr = s.arch == Arch::Sa;
            let best = match &mut *radio {
                RadioPath::Snapshot(snap) => {
                    snap.refresh(d, &start, t0, SEARCH_RADIUS_M, !nr, nr);
                    snap.strongest(nr).first().map(|&(id, _)| id)
                }
                RadioPath::Reference => d.strongest(&start, t0, nr, SEARCH_RADIUS_M).first().map(|&(id, _)| id),
            };
            if nr {
                sm.attach(None, best);
            } else {
                sm.attach(best, None);
            }
            if let Some(h) = hook.as_mut() {
                h.on_attach(t0, AttachReason::Initial, ServingCells { lte: sm.serving_lte(), nr: sm.serving_nr() });
            }
        }

        // measurement engines
        let (lte_engine, nr_engine, mut configs_seen) = match s.arch {
            Arch::Sa => {
                let cfgs = policy.sa_configs();
                (MeasEngine::new(vec![]), MeasEngine::new(cfgs.clone()), cfgs)
            }
            _ => {
                let lte_cfgs = policy.lte_configs();
                let nr_cfgs = if s.arch == Arch::Nsa { policy.nr_configs(false) } else { vec![] };
                let mut seen = lte_cfgs.clone();
                seen.extend(nr_cfgs.iter().copied());
                // the connected-mode NR configs will also be seen eventually
                if s.arch == Arch::Nsa {
                    for c in policy.nr_configs(true) {
                        if !seen.contains(&c) {
                            seen.push(c);
                        }
                    }
                }
                (MeasEngine::new(lte_cfgs), MeasEngine::new(nr_cfgs), seen)
            }
        };
        configs_seen.dedup();
        tally.record(&RrcMessage::MeasConfig { configs: configs_seen.clone() });

        let had_scg = sm.serving_nr().is_some();

        let mut bulk: Option<BulkFlow> = None;
        let mut cbr: Option<CbrFlow> = None;
        match s.workload {
            Workload::Bulk(cca) => bulk = Some(BulkFlow::new(cca)),
            Workload::Cbr { rate_mbps, deadline_ms } => cbr = Some(CbrFlow::new(rate_mbps, deadline_ms)),
            Workload::Idle => {}
        }
        if let Some(f) = &mut bulk {
            f.set_telemetry(tele.clone());
            // summary-only runs never read the flow log; retention is pure
            // logging, so dropping it cannot change any returned sample
            f.retain_samples(record_samples);
        }
        if let Some(f) = &mut cbr {
            f.set_telemetry(tele.clone());
            f.retain_samples(record_samples);
        }

        let dt = 1.0 / s.sample_hz;
        UeSim {
            s,
            d,
            tele: tele.clone(),
            mob,
            sm,
            policy,
            tally,
            conn,
            fault_rng,
            faults,
            ticks_ctr,
            reports_ctr,
            handovers_ctr,
            rlf_ctr,
            mr_loss_ctr,
            ho_fail_ctr,
            ho_duration_h,
            ho_t1_h,
            ho_t2_h,
            cap_h,
            lte_engine,
            nr_engine,
            configs_seen,
            dt,
            t: 0.0,
            tick: 0,
            had_scg,
            lte_leg: LegView::new(),
            nr_leg: LegView::new(),
            scratch: LegScratch::default(),
            merged: PciTable::new(),
            record_samples,
            samples: Vec::new(),
            reports_log: Vec::new(),
            handovers: Vec::new(),
            reports_n: 0,
            handovers_n: 0,
            cap_sum: 0.0,
            rlf_count: 0,
            ho_failures: 0,
            bulk,
            cbr,
            loaded_ticks: 0,
            share_sum: 0.0,
        }
    }

    /// True while the UE still has route and simulated time left. Matches
    /// the single-UE loop condition exactly: checked *before* each tick.
    pub(crate) fn active(&self) -> bool {
        !self.mob.finished() && self.t < self.s.max_duration_s
    }

    /// Serving cells after the last step — what the fleet engine publishes
    /// into the next tick's per-cell attach counts.
    pub(crate) fn serving(&self) -> (Option<CellId>, Option<CellId>) {
        (self.sm.serving_lte(), self.sm.serving_nr())
    }

    /// `(ticks with share < 1.0, Σ per-tick share)` — the fleet engine's
    /// per-UE congestion statistics.
    pub(crate) fn load_stats(&self) -> (u64, f64) {
        (self.loaded_ticks, self.share_sum)
    }

    /// Current UE position — what the fleet engine feeds its shard map to
    /// decide whether the UE has crossed a shard boundary this tick.
    pub(crate) fn position(&self) -> Point {
        self.mob.position()
    }

    /// Replays `ticks` slept ticks in one burst: exactly the per-tick
    /// prologue of [`UeSim::step`] — clock, tick counter, mobility
    /// integration — and nothing else, in the same order. Sound only when a
    /// [`wakeup::plan_sleep`] bound proved every replayed tick's control
    /// plane inert; the referee fleet mode holds the event-driven mode to
    /// that byte-for-byte.
    /// Ticks this UE has stepped or replayed so far — the 1-based ordinal
    /// the last [`crate::hook::TickView`] carried. Staggered fleet UEs run
    /// their own counter, so sleep declarations must quote this, not the
    /// fleet clock.
    pub(crate) fn ticks_stepped(&self) -> u64 {
        self.tick
    }

    pub(crate) fn catch_up(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.t += self.dt;
            self.tick += 1;
            self.ticks_ctr.inc();
            self.mob.step(self.dt);
        }
    }

    /// Event-driven advance to tick `target` (or inactivity, whichever
    /// comes first): before each sampled step the UE asks the planner for
    /// an inert window — capped so the run lands exactly on `target` — and
    /// fast-forwards it with [`UeSim::catch_up`]. Returns `(sleeps,
    /// skipped_ticks)`. With `target = u64::MAX` this is "run to
    /// completion", the single-UE analogue of the fleet's
    /// [`crate::fleet::EngineMode::EventDriven`] loop.
    pub(crate) fn step_to(
        &mut self,
        target: u64,
        mut hook: Option<&mut (dyn SimHook + '_)>,
        load: &CellLoadView,
        radio: &mut RadioPath,
        scratch: &mut wakeup::PlanScratch,
    ) -> (u64, u64) {
        let (mut sleeps, mut skipped) = (0u64, 0u64);
        while self.tick < target && self.active() {
            // a window of `w` skips w ticks and the wake step takes one
            // more, so cap at remaining − 1 to never overshoot `target`
            let cap = DES_MAX_WINDOW.min(target - self.tick - 1);
            let w = if cap > 0 { self.plan_sleep_with(cap, scratch) } else { 0 };
            if w > 0 {
                if let Some(h) = hook.as_deref_mut() {
                    h.on_sleep(self.tick, w);
                }
                self.catch_up(w);
                sleeps += 1;
                skipped += w;
            }
            self.step_sampled(hook.as_deref_mut(), load, radio, true);
        }
        (sleeps, skipped)
    }

    /// Conservative count of future ticks whose control plane is provably
    /// inert — see [`wakeup::plan_sleep`]. `0` means the UE must step next
    /// tick. Test convenience; the fleet uses [`UeSim::plan_sleep_with`].
    #[cfg(test)]
    pub(crate) fn plan_sleep(&self, max_ticks: u64) -> u64 {
        wakeup::plan_sleep(self, max_ticks, &mut wakeup::PlanScratch::default())
    }

    /// [`UeSim::plan_sleep`] with caller-owned scratch buffers — the fleet
    /// threads one [`wakeup::PlanScratch`] per shard through every plan so
    /// steady-state planning never allocates. The plan is a pure function of
    /// UE state; the scratch only recycles capacity.
    pub(crate) fn plan_sleep_with(&self, max_ticks: u64, scratch: &mut wakeup::PlanScratch) -> u64 {
        wakeup::plan_sleep(self, max_ticks, scratch)
    }

    /// Control-plane digest for equivalence assertions: every field must be
    /// bit-identical whether slept ticks ran `sample = false` steps, were
    /// replayed by [`UeSim::catch_up`], or (for the counters) ran fully
    /// sampled. Used by the wakeup soundness proptest and the fleet
    /// mode-equality tests.
    #[cfg(test)]
    pub(crate) fn control_digest(&self) -> (u64, u64, u64, u64, Option<CellId>, Option<CellId>, f64, u64) {
        (
            self.reports_n,
            self.handovers_n,
            self.rlf_count,
            self.ho_failures,
            self.sm.serving_lte(),
            self.sm.serving_nr(),
            self.mob.distance(),
            self.tick,
        )
    }

    /// Advances the simulation by one tick: mobility → HO state machine →
    /// channel views → RLF → measurements/policy → link → trace sample.
    ///
    /// `load` supplies the previous tick's per-cell attach counts; the leg
    /// capacities are multiplied by the serving cell's equal share. With
    /// [`CellLoadView::SOLO`] both shares are exactly `1.0` and the
    /// multiplications are bit-for-bit no-ops (see
    /// [`fiveg_link::load_share`]).
    pub(crate) fn step(&mut self, hook: Option<&mut (dyn SimHook + '_)>, load: &CellLoadView, radio: &mut RadioPath) {
        self.step_sampled(hook, load, radio, true)
    }

    /// [`UeSim::step`] with the data plane made optional. With `sample` true
    /// this IS `step`. With `sample` false the control plane still runs in
    /// full — mobility, HO state machine, channel views, RLF, measurements,
    /// policy, decisions — but the data-plane tail (PHY-measurement tally,
    /// link-layer shares/flows, trace sample, tick hook) is skipped. The
    /// event-driven fleet modes use `sample = false` for virtually-slept
    /// ticks: the referee mode proves dynamically that a parked UE's control
    /// plane would have stayed inert, while the data plane — which never
    /// feeds back into the radio state — is consistently absent from both
    /// scheduled modes, keeping their outputs byte-identical.
    pub(crate) fn step_sampled(
        &mut self,
        mut hook: Option<&mut (dyn SimHook + '_)>,
        load: &CellLoadView,
        radio: &mut RadioPath,
        sample: bool,
    ) {
        let d = self.d;
        let arch = self.s.arch;
        let force_dual = self.s.force_dual;
        let dt = self.dt;
        let tele = &self.tele;
        self.t += dt;
        let t = self.t;
        self.tick += 1;
        self.ticks_ctr.inc();
        {
            let _g = tele.phase(Phase::Mobility);
            self.mob.step(dt);
        }
        let pos = self.mob.position();

        // --- advance the HO state machine
        let mut pre_lte = self.sm.serving_lte();
        let mut pre_nr = self.sm.serving_nr();
        let ho_events = {
            let _g = tele.phase(Phase::HoStateMachine);
            self.sm.step(t, d)
        };
        for ev in ho_events {
            match ev {
                HoEvent::CommandSent(msg) => {
                    self.tally.record(&msg);
                    if let Some(h) = hook.as_mut() {
                        h.on_ho_command(t);
                    }
                }
                HoEvent::Completed(rec, msgs) => {
                    if self.faults.ho_failure_prob > 0.0 && self.fault_rng.chance(self.faults.ho_failure_prob) {
                        // execution failed: fall back to the source cells and
                        // abandon any chained follow-up — its trigger report
                        // described a radio state that no longer holds
                        self.ho_failures += 1;
                        self.ho_fail_ctr.inc();
                        tele.record(t, Event::FaultInjected { kind: "ho_failure".into() });
                        tele.record(t, Event::HoFailure { ho_type: rec.ho_type.acronym().into() });
                        self.sm.abort_chain();
                        self.sm.attach(pre_lte, pre_nr);
                        if let Some(h) = hook.as_mut() {
                            h.on_ho_failure(t, &rec, ServingCells { lte: pre_lte, nr: pre_nr });
                        }
                    } else {
                        for m in &msgs {
                            self.tally.record(m);
                        }
                        self.handovers_ctr.inc();
                        tele.incr(&format!("ho.{}", rec.ho_type.acronym()));
                        self.ho_duration_h.observe(rec.duration_ms());
                        self.ho_t1_h.observe(rec.stages.t1_ms);
                        self.ho_t2_h.observe(rec.stages.t2_ms);
                        tele.record(
                            t,
                            Event::HoCommit { ho_type: rec.ho_type.acronym().into(), duration_ms: rec.duration_ms() },
                        );
                        if let Some(h) = hook.as_mut() {
                            h.on_ho_complete(
                                t,
                                &rec,
                                ServingCells { lte: self.sm.serving_lte(), nr: self.sm.serving_nr() },
                            );
                        }
                        self.handovers_n += 1;
                        if self.record_samples {
                            self.handovers.push(rec);
                        }
                    }
                    pre_lte = self.sm.serving_lte();
                    pre_nr = self.sm.serving_nr();
                    // the new serving cell re-delivers measurement configs
                    self.lte_engine.reset();
                    self.nr_engine.reset();
                    self.policy.end_phase();
                    self.tally.record(&RrcMessage::MeasConfig { configs: vec![] });
                }
            }
        }

        // SCG presence flips the NR measurement config (B1-only vs full set)
        if arch == Arch::Nsa {
            let has_scg = self.sm.serving_nr().is_some();
            if has_scg != self.had_scg {
                self.nr_engine.reconfigure(self.policy.nr_configs(has_scg));
                self.tally.record(&RrcMessage::MeasConfig { configs: vec![] });
                self.had_scg = has_scg;
            }
        }

        // --- channel views
        let channel_guard = tele.phase(Phase::Channel);
        if let RadioPath::Snapshot(snap) = &mut *radio {
            // one refresh feeds both leg views, RLF recovery and attach —
            // each in-radius cell's rx_dbm is evaluated exactly once per tick
            snap.refresh(d, &pos, t, SEARCH_RADIUS_M, arch != Arch::Sa, arch != Arch::Lte);
        }
        let lte_view: Option<&LegView> = if arch != Arch::Sa {
            match &*radio {
                RadioPath::Snapshot(snap) => {
                    let all = snap.strongest(false);
                    fill_leg_view(
                        &mut self.lte_leg,
                        &mut self.scratch,
                        d,
                        all,
                        &pos,
                        t,
                        false,
                        self.sm.serving_lte(),
                        arch == Arch::Nsa,
                    );
                }
                RadioPath::Reference => {
                    let all = d.strongest(&pos, t, false, SEARCH_RADIUS_M);
                    fill_leg_view(
                        &mut self.lte_leg,
                        &mut self.scratch,
                        d,
                        &all,
                        &pos,
                        t,
                        false,
                        self.sm.serving_lte(),
                        arch == Arch::Nsa,
                    );
                }
            }
            Some(&self.lte_leg)
        } else {
            None
        };
        let nr_view: Option<&LegView> = if arch != Arch::Lte {
            match &*radio {
                RadioPath::Snapshot(snap) => {
                    let all = snap.strongest(true);
                    fill_leg_view(
                        &mut self.nr_leg,
                        &mut self.scratch,
                        d,
                        all,
                        &pos,
                        t,
                        true,
                        self.sm.serving_nr(),
                        false,
                    );
                }
                RadioPath::Reference => {
                    let all = d.strongest(&pos, t, true, SEARCH_RADIUS_M);
                    fill_leg_view(
                        &mut self.nr_leg,
                        &mut self.scratch,
                        d,
                        &all,
                        &pos,
                        t,
                        true,
                        self.sm.serving_nr(),
                        false,
                    );
                }
            }
            Some(&self.nr_leg)
        } else {
            None
        };
        drop(channel_guard);

        // --- radio link failure / reattach
        if let Some(lv) = &lte_view {
            let lost = lv.serving.map(|m| m.rrs.rsrp_dbm < RLF_DBM).unwrap_or(self.sm.serving_lte().is_none());
            if lost && !self.sm.busy() {
                let best = match &*radio {
                    RadioPath::Snapshot(snap) => snap.strongest(false).first().copied(),
                    RadioPath::Reference => d.strongest(&pos, t, false, SEARCH_RADIUS_M).first().copied(),
                };
                if let Some((id, rx)) = best {
                    if rx > RLF_DBM + 4.0 && Some(id) != self.sm.serving_lte() {
                        let rlf = self.sm.serving_lte().is_some();
                        if rlf {
                            self.rlf_count += 1;
                            self.rlf_ctr.inc();
                            tele.record(t, Event::Rlf { leg: "lte".into() });
                        }
                        let keep_nr = if arch == Arch::Nsa { None } else { self.sm.serving_nr() };
                        self.sm.attach(Some(id), keep_nr);
                        self.lte_engine.reset();
                        self.nr_engine.reset();
                        self.policy.end_phase();
                        if let Some(h) = hook.as_mut() {
                            h.on_attach(
                                t,
                                AttachReason::Reattach { leg: RadioTech::Lte, rlf },
                                ServingCells { lte: self.sm.serving_lte(), nr: self.sm.serving_nr() },
                            );
                        }
                    }
                }
            }
        }
        if arch == Arch::Sa {
            let lost = nr_view
                .as_ref()
                .and_then(|v| v.serving)
                .map(|m| m.rrs.rsrp_dbm < RLF_DBM)
                .unwrap_or(self.sm.serving_nr().is_none());
            if lost && !self.sm.busy() {
                let best = match &*radio {
                    RadioPath::Snapshot(snap) => snap.strongest(true).first().copied(),
                    RadioPath::Reference => d.strongest(&pos, t, true, SEARCH_RADIUS_M).first().copied(),
                };
                if let Some((id, rx)) = best {
                    if rx > RLF_DBM + 4.0 && Some(id) != self.sm.serving_nr() {
                        let rlf = self.sm.serving_nr().is_some();
                        if rlf {
                            self.rlf_count += 1;
                            self.rlf_ctr.inc();
                            tele.record(t, Event::Rlf { leg: "nr".into() });
                        }
                        self.sm.attach(None, Some(id));
                        self.nr_engine.reset();
                        self.policy.end_phase();
                        if let Some(h) = hook.as_mut() {
                            h.on_attach(
                                t,
                                AttachReason::Reattach { leg: RadioTech::Nr, rlf },
                                ServingCells { lte: self.sm.serving_lte(), nr: self.sm.serving_nr() },
                            );
                        }
                    }
                }
            }
        }

        // --- measurements, reports, policy (only between HOs)
        if !self.sm.busy() {
            // policy context map: keyed by PCI. NR entries first so NR-leg
            // reports resolve to gNB cells; the HO start below re-resolves
            // within the correct leg anyway.
            self.merged.clear();
            if let Some(v) = &nr_view {
                for (p, id) in v.candidates.iter() {
                    self.merged.insert_first(p, id);
                }
            }
            if let Some(v) = &lte_view {
                for (p, id) in v.candidates.iter() {
                    self.merged.insert_first(p, id);
                }
            }
            let mut decisions = Vec::new();
            let mut rearm_b1 = false;
            {
                let pctx = PolicyContext {
                    deployment: d,
                    serving_lte: self.sm.serving_lte(),
                    serving_nr: self.sm.serving_nr(),
                    candidates: &self.merged,
                    t,
                };

                // LTE leg
                if let Some(v) = &lte_view {
                    if let Some(serving) = v.serving {
                        let reps = {
                            let _g = tele.phase(Phase::Measurement);
                            self.lte_engine.step(t, &serving, &v.neighbors)
                        };
                        for rep in reps {
                            if self.faults.mr_loss_prob > 0.0 && self.fault_rng.chance(self.faults.mr_loss_prob) {
                                self.mr_loss_ctr.inc();
                                tele.record(t, Event::FaultInjected { kind: "mr_loss".into() });
                                tele.record(t, Event::MrLoss { event: rep.event.label() });
                                continue; // report lost on the uplink
                            }
                            self.reports_ctr.inc();
                            self.tally.record(&RrcMessage::MeasurementReport {
                                event: rep.event,
                                serving_pci: serving.pci,
                                serving_rrs: serving.rrs,
                                neighbors: rep.neighbors.clone(),
                            });
                            self.reports_n += 1;
                            if self.record_samples {
                                self.reports_log.push(MrRecord {
                                    t,
                                    event: rep.event,
                                    serving_pci: serving.pci.0,
                                    neighbor_pcis: rep.neighbors.iter().map(|n| n.pci.0).collect(),
                                });
                            }
                            let _g = tele.phase(Phase::Policy);
                            if let Some(dec) = self.policy.on_report(&rep, &pctx) {
                                decisions.push(dec);
                            }
                        }
                    }
                }

                // NR leg (NSA measurement of NR cells, or SA serving leg)
                if let Some(v) = &nr_view {
                    let serving = v.serving.unwrap_or(Measurement {
                        pci: Pci(0),
                        rrs: Rrs::OUT_OF_RANGE,
                        freq_mhz: 0.0,
                        group: None,
                    });
                    let reps = {
                        let _g = tele.phase(Phase::Measurement);
                        self.nr_engine.step(t, &serving, &v.neighbors)
                    };
                    for rep in reps {
                        if self.faults.mr_loss_prob > 0.0 && self.fault_rng.chance(self.faults.mr_loss_prob) {
                            self.mr_loss_ctr.inc();
                            tele.record(t, Event::FaultInjected { kind: "mr_loss".into() });
                            tele.record(t, Event::MrLoss { event: rep.event.label() });
                            continue;
                        }
                        // B1 reporting is only configured during SCG
                        // discovery or an open SCG-change window
                        if rep.event.kind == fiveg_rrc::EventKind::B1
                            && arch == Arch::Nsa
                            && !self.policy.wants_nr_b1(self.sm.serving_nr().is_some(), t)
                        {
                            continue;
                        }
                        self.reports_ctr.inc();
                        self.tally.record(&RrcMessage::MeasurementReport {
                            event: rep.event,
                            serving_pci: serving.pci,
                            serving_rrs: serving.rrs,
                            neighbors: rep.neighbors.clone(),
                        });
                        self.reports_n += 1;
                        if self.record_samples {
                            self.reports_log.push(MrRecord {
                                t,
                                event: rep.event,
                                serving_pci: serving.pci.0,
                                neighbor_pcis: rep.neighbors.iter().map(|n| n.pci.0).collect(),
                            });
                        }
                        // an A2 opens the SCG-change window: the network
                        // re-requests B1 reporting to find a replacement gNB
                        if rep.event.kind == fiveg_rrc::EventKind::A2 {
                            rearm_b1 = true;
                        }
                        let _g = tele.phase(Phase::Policy);
                        if let Some(dec) = self.policy.on_report(&rep, &pctx) {
                            decisions.push(dec);
                        }
                    }
                }

                // pending-A2 decay (SCG release without replacement)
                let _g = tele.phase(Phase::Policy);
                if let Some(dec) = self.policy.tick(&pctx) {
                    decisions.push(dec);
                }
            }

            if rearm_b1 {
                self.nr_engine.rearm(fiveg_rrc::EventKind::B1);
            }

            // execute the first decision (one HO at a time); resolve the
            // target PCI within the correct leg — co-located gNBs reuse eNB
            // PCIs, so a merged map would be ambiguous
            if let Some(dec) = decisions.into_iter().next() {
                let lte_cand = lte_view.as_ref().map(|v| &v.candidates);
                let nr_cand = nr_view.as_ref().map(|v| &v.candidates);
                let target = match &dec.action {
                    fiveg_rrc::ReconfigAction::ScgRelease => None,
                    fiveg_rrc::ReconfigAction::LteHandover { target }
                    | fiveg_rrc::ReconfigAction::MenbHandover { target } => lte_cand.and_then(|c| c.get(*target)),
                    fiveg_rrc::ReconfigAction::McgHandover { target } => nr_cand.and_then(|c| c.get(*target)),
                    fiveg_rrc::ReconfigAction::ScgAddition { nr_target }
                    | fiveg_rrc::ReconfigAction::ScgModification { nr_target }
                    | fiveg_rrc::ReconfigAction::ScgChange { nr_target } => nr_cand.and_then(|c| c.get(*nr_target)),
                };
                let needs_target = !matches!(dec.action, fiveg_rrc::ReconfigAction::ScgRelease);
                if !needs_target || target.is_some() {
                    if let Some(h) = hook.as_mut() {
                        h.on_decision(t, &dec.action);
                    }
                    self.sm.start(dec.action, target, dec.phase, d, t);
                }
            }
        }

        // everything below is the data plane: observable output and link
        // bookkeeping that never feeds back into the radio/control state
        if !sample {
            return;
        }

        // --- PHY-layer measurement accounting (SSB sweeps)
        if self.conn.is_connected(t) {
            if let Some(v) = &lte_view {
                self.tally.record_phy_meas(1 + v.neighbors.len() as u64);
            }
            if let Some(v) = &nr_view {
                let serving_mm =
                    self.sm.serving_nr().map(|c| d.cell(c).band.class() == BandClass::MmWave).unwrap_or(false);
                let beams = if serving_mm { 8 } else { 1 };
                self.tally.record_phy_meas(beams * (1 + v.neighbors.len() as u64));
            }
        }

        // --- link layer
        let link_guard = tele.phase(Phase::Link);
        let cs = self.sm.connection();
        // Previous-tick per-cell attach counts → equal-share scheduling.
        // SOLO (and any cell with <= 1 attached UE) yields exactly 1.0, so
        // the multiplications below are bit-for-bit no-ops outside a loaded
        // fleet (see fiveg_link::load_share).
        let lte_share = cs.lte.map(|id| load.share(id)).unwrap_or(1.0);
        let nr_share = cs.nr.map(|id| load.share(id)).unwrap_or(1.0);
        let lte_cap = match (cs.lte, &lte_view) {
            (Some(id), Some(v)) => {
                shannon_capacity_mbps(v.serving_sinr_db, d.cell(id).band.bandwidth_mhz * LTE_CA_FACTOR)
                    * FAIR_SHARE
                    * lte_share
            }
            _ => 0.0,
        };
        let nr_cap = match (cs.nr, &nr_view) {
            (Some(id), Some(v)) => {
                let band = d.cell(id).band;
                let ca = match band.class() {
                    BandClass::MmWave => 1.0,
                    BandClass::Mid => NR_MID_CA_FACTOR,
                    BandClass::Low => NR_LOW_CA_FACTOR,
                };
                shannon_capacity_mbps(v.serving_sinr_db, band.bandwidth_mhz * ca) * FAIR_SHARE * nr_share
            }
            _ => 0.0,
        };
        let serving_share = if lte_share < nr_share { lte_share } else { nr_share };
        if serving_share < 1.0 {
            self.loaded_ticks += 1;
        }
        self.share_sum += serving_share;
        let dual = force_dual.unwrap_or_else(|| d.dual_mode_at(&pos));
        let bearer = match arch {
            Arch::Lte => Bearer::LteOnly,
            Arch::Sa => Bearer::NrOnly,
            Arch::Nsa => {
                if cs.nr.is_none() {
                    Bearer::LteOnly
                } else if dual {
                    Bearer::Dual
                } else {
                    Bearer::NrOnly
                }
            }
        };
        let path: PathOutcome = compose(&DownlinkState {
            lte_mbps: lte_cap,
            nr_mbps: nr_cap,
            lte_interrupted: cs.lte_interrupted,
            nr_interrupted: cs.nr_interrupted,
            bearer,
        });

        self.conn.step(t);
        if let Some(f) = &mut self.bulk {
            f.step(t, dt, &path);
            self.conn.on_activity(t);
        }
        if let Some(f) = &mut self.cbr {
            f.step(t, dt, &path);
            self.conn.on_activity(t);
        }
        self.cap_h.observe(path.capacity_mbps);
        drop(link_guard);

        // --- record sample
        let append_guard = tele.phase(Phase::TraceAppend);
        self.cap_sum += path.capacity_mbps;
        if self.record_samples {
            self.samples.push(TraceSample {
                t,
                pos: (pos.x, pos.y),
                dist_m: self.mob.distance(),
                lte_cell: cs.lte.map(|c| c.0),
                nr_cell: cs.nr.map(|c| c.0),
                lte_rrs: lte_view.as_ref().and_then(|v| v.serving.map(|m| m.rrs)),
                nr_rrs: nr_view.as_ref().and_then(|v| v.serving.map(|m| m.rrs)),
                lte_neighbors: lte_view
                    .as_ref()
                    .map(|v| {
                        v.neighbors.iter().filter_map(|m| v.candidates.get(m.pci).map(|id| (id.0, m.rrs))).collect()
                    })
                    .unwrap_or_default(),
                nr_neighbors: nr_view
                    .as_ref()
                    .map(|v| {
                        v.neighbors.iter().filter_map(|m| v.candidates.get(m.pci).map(|id| (id.0, m.rrs))).collect()
                    })
                    .unwrap_or_default(),
                capacity_mbps: path.capacity_mbps,
                base_rtt_ms: path.base_rtt_ms,
                interrupted: cs.lte_interrupted || cs.nr_interrupted,
                dual_mode: bearer == Bearer::Dual,
            });
        }
        drop(append_guard);

        if let Some(h) = hook.as_mut() {
            h.on_tick(&TickView {
                tick: self.tick,
                t,
                serving: ServingCells { lte: cs.lte, nr: cs.nr },
                phase: self.sm.ho_phase(),
                queued: self.sm.queued(),
                lte_rrs: lte_view.as_ref().and_then(|v| v.serving.map(|m| m.rrs)),
                nr_rrs: nr_view.as_ref().and_then(|v| v.serving.map(|m| m.rrs)),
                capacity_mbps: path.capacity_mbps,
            });
        }
    }

    /// Finishes the run: fires `on_run_end`, records the final gauges and
    /// consumes the UE into its [`Trace`].
    pub(crate) fn into_trace(self, mut hook: Option<&mut (dyn SimHook + '_)>) -> Trace {
        if let Some(h) = hook.as_mut() {
            h.on_run_end(
                self.t,
                ServingCells { lte: self.sm.serving_lte(), nr: self.sm.serving_nr() },
                self.sm.ho_phase(),
                self.sm.queued(),
            );
        }

        self.tele.set_gauge("sim.duration_s", self.t);
        self.tele.set_gauge("sim.traveled_m", self.mob.distance());

        let cells = self
            .d
            .cells
            .iter()
            .map(|c| CellDictEntry {
                cell: c.id.0,
                pci: c.pci.0,
                is_nr: c.is_nr(),
                band: c.band.name.to_string(),
                class: c.band.class(),
                site: (c.site.x, c.site.y),
                tower: c.tower.0,
                co_located: self.d.towers[c.tower.0 as usize].co_located,
            })
            .collect();

        Trace {
            meta: TraceMeta {
                carrier: self.s.carrier,
                env: self.s.env,
                arch: self.s.arch,
                seed: self.s.seed,
                sample_hz: self.s.sample_hz,
                duration_s: self.t,
                route_len_m: self.s.route.length(),
                traveled_m: self.mob.distance(),
            },
            cells,
            samples: self.samples,
            reports: self.reports_log,
            handovers: self.handovers,
            signaling: self.tally,
            configs: self.configs_seen,
            rlf_count: self.rlf_count,
            ho_failures: self.ho_failures,
            flow: match (self.bulk, self.cbr) {
                (Some(f), _) => FlowLog::Tcp(f.samples().to_vec()),
                (_, Some(f)) => FlowLog::Cbr(f.samples().to_vec()),
                _ => FlowLog::None,
            },
        }
    }

    /// Finishes the run in summary mode: fires `on_run_end` and records the
    /// final gauges exactly as [`UeSim::into_trace`] does, then consumes the
    /// UE into flat [`UeRunStats`] instead of a [`Trace`]. The counts and
    /// sums mirror what `UeSummary::from_trace` would compute from the same
    /// run's trace, bit for bit.
    pub(crate) fn finish_summary(self, mut hook: Option<&mut (dyn SimHook + '_)>) -> UeRunStats {
        if let Some(h) = hook.as_mut() {
            h.on_run_end(
                self.t,
                ServingCells { lte: self.sm.serving_lte(), nr: self.sm.serving_nr() },
                self.sm.ho_phase(),
                self.sm.queued(),
            );
        }

        self.tele.set_gauge("sim.duration_s", self.t);
        self.tele.set_gauge("sim.traveled_m", self.mob.distance());

        UeRunStats {
            ticks: self.tick,
            traveled_m: self.mob.distance(),
            handovers: self.handovers_n,
            ho_failures: self.ho_failures,
            rlf_count: self.rlf_count,
            reports: self.reports_n,
            capacity_sum: self.cap_sum,
            loaded_ticks: self.loaded_ticks,
            share_sum: self.share_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::Carrier;

    fn short_freeway(arch: Arch, seed: u64) -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, arch, 8.0, seed).duration_s(240.0).sample_hz(10.0).build().run()
    }

    #[test]
    fn runs_and_produces_samples() {
        let tr = short_freeway(Arch::Nsa, 1);
        assert!(tr.samples.len() > 1000);
        assert!(tr.meta.traveled_m > 5000.0);
    }

    #[test]
    fn is_deterministic() {
        let a = short_freeway(Arch::Nsa, 2);
        let b = short_freeway(Arch::Nsa, 2);
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.handovers, b.handovers);
        assert_eq!(a.signaling, b.signaling);
    }

    #[test]
    fn different_seeds_differ() {
        let a = short_freeway(Arch::Nsa, 3);
        let b = short_freeway(Arch::Nsa, 4);
        assert_ne!(a.handovers.len(), 0);
        // traces should not be identical
        assert_ne!(a.samples.last().unwrap().lte_cell, b.samples.last().unwrap().lte_cell);
    }

    #[test]
    fn nsa_produces_5g_procedures() {
        let tr = short_freeway(Arch::Nsa, 5);
        use fiveg_ran::HoCategory;
        let fiveg = tr.handovers.iter().filter(|h| h.ho_type.category() == HoCategory::FiveG).count();
        assert!(
            fiveg > 0,
            "expected 5G HO procedures, got HOs: {:?}",
            tr.handovers.iter().map(|h| h.ho_type).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lte_only_has_only_lteh() {
        let tr = short_freeway(Arch::Lte, 6);
        assert!(!tr.handovers.is_empty());
        assert!(tr.handovers.iter().all(|h| h.ho_type == fiveg_ran::HoType::Lteh));
        assert!(tr.samples.iter().all(|s| s.nr_cell.is_none()));
    }

    #[test]
    fn sa_has_mcgh_only() {
        let tr = short_freeway(Arch::Sa, 7);
        assert!(
            tr.handovers.iter().all(|h| h.ho_type == fiveg_ran::HoType::Mcgh),
            "{:?}",
            tr.handovers.iter().map(|h| h.ho_type).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reports_precede_handovers() {
        let tr = short_freeway(Arch::Nsa, 8);
        assert!(!tr.reports.is_empty());
        assert!(tr.reports.len() >= tr.handovers.len());
    }

    #[test]
    fn signaling_tally_nonzero() {
        let tr = short_freeway(Arch::Nsa, 9);
        assert!(tr.signaling.meas_reports > 0);
        assert!(tr.signaling.rach_msgs >= 2 * tr.handovers.len() as u64);
        assert!(tr.signaling.bytes > 0);
        assert!(tr.signaling.phy_meas > 0);
    }

    #[test]
    fn handover_times_ordered() {
        let tr = short_freeway(Arch::Nsa, 10);
        for h in &tr.handovers {
            assert!(h.t_decision < h.t_command);
            assert!(h.t_command < h.t_complete);
        }
        for w in tr.handovers.windows(2) {
            assert!(w[0].t_complete <= w[1].t_complete + 1e-9);
        }
    }

    #[test]
    fn capacity_positive_most_of_the_time() {
        let tr = short_freeway(Arch::Nsa, 11);
        let up = tr.samples.iter().filter(|s| s.capacity_mbps > 1.0).count();
        assert!(up * 10 > tr.samples.len() * 7, "{up}/{}", tr.samples.len());
    }

    #[test]
    fn bulk_workload_records_tcp_flow() {
        let tr = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 12)
            .duration_s(60.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(fiveg_link::Cca::Bbr))
            .build()
            .run();
        match &tr.flow {
            FlowLog::Tcp(v) => {
                assert_eq!(v.len(), tr.samples.len());
                let mean = v.iter().map(|s| s.goodput_mbps).sum::<f64>() / v.len() as f64;
                assert!(mean > 1.0, "mean goodput {mean}");
            }
            other => panic!("expected TCP flow, got {other:?}"),
        }
    }

    #[test]
    fn mr_loss_faults_reduce_report_count() {
        let clean =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 13).duration_s(180.0).sample_hz(10.0).build().run();
        let faulty = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 13)
            .duration_s(180.0)
            .sample_hz(10.0)
            .faults(FaultConfig { mr_loss_prob: 0.7, ho_failure_prob: 0.0 })
            .build()
            .run();
        assert!(
            faulty.signaling.meas_reports < clean.signaling.meas_reports,
            "{} vs {}",
            faulty.signaling.meas_reports,
            clean.signaling.meas_reports
        );
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::scenario::{Scenario, ScenarioBuilder};
    use fiveg_ran::Carrier;
    use fiveg_telemetry::{Telemetry, TelemetryConfig};

    fn scenario(seed: u64) -> Scenario {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, seed).duration_s(180.0).sample_hz(10.0).build()
    }

    #[test]
    fn telemetry_does_not_perturb_trace() {
        let off = scenario(21).run();
        let mut s = scenario(21);
        s.telemetry = TelemetryConfig::on();
        let tele = Telemetry::new(s.telemetry);
        let on = s.run_instrumented(&tele);
        assert_eq!(
            serde_json::to_string(&off).unwrap(),
            serde_json::to_string(&on).unwrap(),
            "instrumentation must not perturb the trace"
        );
    }

    #[test]
    fn enabled_journal_is_deterministic() {
        let journal = || {
            let mut s = scenario(22);
            s.telemetry = TelemetryConfig::on();
            let tele = Telemetry::new(s.telemetry);
            s.run_instrumented(&tele);
            tele.journal_jsonl()
        };
        let a = journal();
        let b = journal();
        assert_eq!(a, b, "two runs must emit byte-identical journals");
        assert!(!a.is_empty());
        // sim-time ordered
        let mut last = f64::NEG_INFINITY;
        for line in a.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let t = v["t"].as_f64().unwrap();
            assert!(t >= last, "journal out of order at {line}");
            last = t;
        }
    }

    #[test]
    fn counters_match_trace_stats() {
        let mut s = scenario(23);
        s.telemetry = TelemetryConfig::on();
        let tele = Telemetry::new(s.telemetry);
        let tr = s.run_instrumented(&tele);
        assert_eq!(tele.counter_value("sim.ticks"), tr.samples.len() as u64);
        assert_eq!(tele.counter_value("sim.handovers"), tr.handovers.len() as u64);
        assert_eq!(tele.counter_value("sim.reports"), tr.reports.len() as u64);
        assert_eq!(tele.counter_value("sim.rlf"), tr.rlf_count);
        let per_type: u64 =
            fiveg_ran::HoType::ALL.iter().map(|h| tele.counter_value(&format!("ho.{}", h.acronym()))).sum();
        assert_eq!(per_type, tr.handovers.len() as u64);
        let dur = tele.histogram_snapshot("ho.duration_ms").unwrap();
        assert_eq!(dur.count, tr.handovers.len() as u64);
    }

    #[test]
    fn fault_injections_are_counted() {
        let mut s = scenario(24);
        s.faults = FaultConfig { mr_loss_prob: 0.5, ho_failure_prob: 0.5 };
        s.telemetry = TelemetryConfig::on();
        let tele = Telemetry::new(s.telemetry);
        let tr = s.run_instrumented(&tele);
        assert!(tele.counter_value("faults.mr_loss") > 0);
        assert_eq!(tele.counter_value("faults.ho_failure"), tr.ho_failures);
    }

    #[test]
    fn summary_reports_at_least_six_phases() {
        let mut s = scenario(25);
        s.telemetry = TelemetryConfig::on();
        let tele = Telemetry::new(s.telemetry);
        s.run_instrumented(&tele);
        let summary = tele.summary();
        for phase in ["mobility", "ho_state_machine", "channel", "measurement", "policy", "link", "trace_append"] {
            assert!(summary.contains(phase), "summary missing phase {phase}:\n{summary}");
        }
        assert!(summary.contains("p99"), "{summary}");
        assert!(summary.contains("sim.ticks"), "{summary}");
    }

    #[test]
    fn out_of_range_faults_behave_like_clamped() {
        let mut wild = scenario(26);
        wild.faults = FaultConfig { mr_loss_prob: 7.0, ho_failure_prob: -3.0 };
        let mut pinned = scenario(26);
        pinned.faults = FaultConfig { mr_loss_prob: 1.0, ho_failure_prob: 0.0 };
        let a = wild.run();
        let b = pinned.run();
        assert_eq!(a.signaling.meas_reports, b.signaling.meas_reports);
        assert_eq!(a.handovers, b.handovers);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::Carrier;

    #[test]
    fn ho_failures_are_counted_and_rolled_back() {
        let faulty = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 8.0, 77)
            .duration_s(240.0)
            .sample_hz(10.0)
            .faults(FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.5 })
            .build()
            .run();
        assert!(faulty.ho_failures > 0, "with p=0.5 failures must occur");
        // failed HOs are not recorded as completed handovers
        let clean =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 8.0, 77).duration_s(240.0).sample_hz(10.0).build().run();
        assert!(
            faulty.handovers.len() < clean.handovers.len() + faulty.ho_failures as usize,
            "completed + failed should roughly bound the clean count"
        );
        // the run still terminates with a usable connection most of the time
        let attached = faulty.samples.iter().filter(|s| s.lte_cell.is_some()).count();
        assert!(attached * 10 > faulty.samples.len() * 8);
    }

    #[test]
    fn total_mr_loss_freezes_mobility() {
        let t = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 78)
            .duration_s(180.0)
            .sample_hz(10.0)
            .faults(FaultConfig { mr_loss_prob: 1.0, ho_failure_prob: 0.0 })
            .build()
            .run();
        // without any reports the network can never decide a HO
        assert!(t.handovers.is_empty(), "got {:?}", t.handovers.len());
        assert_eq!(t.signaling.meas_reports, 0);
    }

    // Fault injection at probability zero is indistinguishable — to the
    // byte — from no fault injection at all: the gated RNG draws
    // (`prob > 0.0 && chance(prob)`) must never fire, so the fault RNG
    // never perturbs anything. The same must hold for configs that only
    // *clamp* to zero (negative probabilities, NaN).
    #[test]
    fn zero_probability_faults_are_byte_identical_to_none() {
        let base = |faults: FaultConfig| {
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 79)
                .duration_s(180.0)
                .sample_hz(10.0)
                .faults(faults)
                .build()
                .run()
        };
        let none = base(FaultConfig::NONE);
        let zeros = base(FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.0 });
        let clamps_to_zero = base(FaultConfig { mr_loss_prob: -0.25, ho_failure_prob: f64::NAN });
        assert_eq!(none, zeros);
        assert_eq!(none, clamps_to_zero);
        let bytes = serde_json::to_string(&none).unwrap();
        assert_eq!(bytes, serde_json::to_string(&zeros).unwrap());
        assert_eq!(bytes, serde_json::to_string(&clamps_to_zero).unwrap());
        assert_eq!(none.ho_failures, 0);
    }
}

#[cfg(test)]
mod wakeup_tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::Carrier;

    fn sim_for<'d>(s: &Scenario, d: &'d Deployment, tele: &Telemetry, radio: &mut RadioPath) -> UeSim<'d> {
        UeSim::new(s.clone(), d, tele, radio, None, false)
    }

    /// The single-UE core of the tentpole's equivalence gate: whenever the
    /// planner grants a window `w`, stepping through it with the full
    /// control plane (sampling off) must land on exactly the state
    /// `catch_up(w)` reaches analytically — same counters, same serving
    /// cells, same clock, same position. Any control-plane activity inside
    /// a granted window (an unsound bound) shifts a counter and fails the
    /// digest compare at the next sampled step.
    fn assert_windows_sound(s: &Scenario) -> (u64, u64) {
        let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
        let tele = Telemetry::disabled();
        let mut radio_a = RadioPath::Snapshot(RadioSnapshot::new());
        let mut radio_b = RadioPath::Snapshot(RadioSnapshot::new());
        let mut stepper = sim_for(s, &d, &tele, &mut radio_a);
        let mut skipper = sim_for(s, &d, &tele, &mut radio_b);
        let (mut plans, mut planned_ticks) = (0u64, 0u64);
        while stepper.active() {
            let w = stepper.plan_sleep(126);
            assert_eq!(w, skipper.plan_sleep(126), "the plan must be a pure function of UE state");
            if w > 0 {
                plans += 1;
                planned_ticks += w;
                // referee side: w unsampled steps, full control plane
                for _ in 0..w {
                    stepper.step_sampled(None, &CellLoadView::SOLO, &mut radio_a, false);
                }
                // event side: one analytic catch-up
                skipper.catch_up(w);
            }
            // both take the next real tick sampled
            stepper.step_sampled(None, &CellLoadView::SOLO, &mut radio_a, true);
            skipper.step_sampled(None, &CellLoadView::SOLO, &mut radio_b, true);
            assert_eq!(
                stepper.control_digest(),
                skipper.control_digest(),
                "stepped-through and skipped-over state diverged after a granted window"
            );
        }
        assert!(!skipper.active(), "both paths must finish together");
        (plans, planned_ticks)
    }

    #[test]
    fn granted_windows_are_inert_on_the_bench_scenario() {
        let s = ScenarioBuilder::city_loop(Carrier::OpY, 201).arch(Arch::Sa).duration_s(60.0).sample_hz(10.0).build();
        let (plans, planned) = assert_windows_sound(&s);
        assert!(plans > 0, "the committed bench scenario must actually sleep");
        assert!(planned >= plans * 4, "every rung is at least 4 ticks");
    }

    #[test]
    fn single_ue_des_matches_stepped_summary() {
        let s = ScenarioBuilder::city_loop(Carrier::OpY, 201).arch(Arch::Sa).duration_s(60.0).sample_hz(10.0).build();
        let des = run_des(&s);
        let stepped = run_stepped_summary(&s);
        assert_eq!(des.control(), stepped.control(), "DES and stepped summary runs diverged");
        assert_eq!(stepped.skipped_ticks, 0);
        assert!(des.skip_ratio() >= 0.5, "the bench scenario must skip most ticks, got {}", des.skip_ratio());
    }

    #[test]
    fn step_to_lands_exactly_on_target() {
        let s = ScenarioBuilder::city_loop(Carrier::OpY, 201).arch(Arch::Sa).duration_s(60.0).sample_hz(10.0).build();
        let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
        let tele = Telemetry::disabled();
        let mut radio = RadioPath::Snapshot(RadioSnapshot::new());
        let mut ue = sim_for(&s, &d, &tele, &mut radio);
        for target in [1u64, 2, 7, 100, 101, 350] {
            ue.step_to(target, None, &CellLoadView::SOLO, &mut radio, &mut wakeup::PlanScratch::default());
            assert_eq!(ue.control_digest().7, target, "step_to must stop exactly at its target tick");
        }
    }

    #[test]
    fn nsa_and_flows_never_plan() {
        // NSA carries a SINR-quantity B1 config: never eligible
        let nsa = ScenarioBuilder::city_loop(Carrier::OpY, 202).duration_s(30.0).sample_hz(10.0).build();
        let (plans, _) = assert_windows_sound(&nsa);
        assert_eq!(plans, 0, "NSA UEs must stay on the fixed step");
        // data-plane flows sample every tick: never eligible either
        let busy = ScenarioBuilder::city_loop(Carrier::OpY, 203)
            .arch(Arch::Sa)
            .duration_s(30.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(fiveg_link::Cca::Cubic))
            .build();
        let (plans, _) = assert_windows_sound(&busy);
        assert_eq!(plans, 0, "UEs with active flows must stay on the fixed step");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            /// Soundness over random seeds and both sleepable
            /// architectures: no granted window may hide control-plane
            /// activity, whatever the deployment draw.
            #[test]
            fn wakeup_bound_is_sound(seed in 0u64..500, sa in proptest::bool::ANY) {
                let arch = if sa { Arch::Sa } else { Arch::Lte };
                let s = ScenarioBuilder::city_loop(Carrier::OpY, seed)
                    .arch(arch)
                    .duration_s(40.0)
                    .sample_hz(5.0)
                    .build();
                assert_windows_sound(&s);
            }
        }
    }
}
