//! Exact sleep planning for the event-driven fleet scheduler.
//!
//! [`plan_sleep`] answers one question about a [`UeSim`]: *for how many
//! future ticks is its control plane provably inert?* A tick is inert when
//! stepping it would mutate nothing beyond the clock, the tick counter and
//! the mobility integral — no measurement event arms or fires, no RLF, no HO
//! progress, no policy timer, no RNG draw. A UE with `W` inert ticks ahead
//! can sleep: the fleet skips its steps and replays the prologue with
//! [`UeSim::catch_up`] on wakeup, byte-identically.
//!
//! The proof splits into:
//!
//! * **Eligibility** — discrete state that could act on *any* tick must be
//!   quiescent: HO state machine idle with an empty queue, policy without a
//!   pending NR-A2 window, every measurement arm `Idle`, all legs attached,
//!   no data-plane flows, no trace retention. Any pending HO or timer forces
//!   wakeup = next tick (a plan of 0).
//! * **Exact replay** — everything the engine would measure in the window
//!   is a pure function of `(position, t)`, and the mobility integral is a
//!   pure function of the driver state, so the planner *dry-runs* the
//!   future instead of bounding it. A [`MobilityPeek`] cursor replays the
//!   per-tick prologue bit-identically ([`UeSim::catch_up`]'s accumulation
//!   order), the serving RSRP series comes from the same
//!   [`Cell::rx_dbm_cached`] + `compute_rrs` clamp the leg view applies,
//!   and every configured event's [`EventConfig::entered`] is evaluated
//!   verbatim against the candidate maximum. The grant is *exact*: one tick
//!   short of the first tick on which anything would fire.
//!
//! The only approximation left is the candidate set. Evaluating every
//! in-radius cell on every dry tick would cost more than the step it
//! replaces, so a screen first reduces the deployment to per-leg *hot
//! lists* with an O(1) per-cell bound: median path loss at the closest
//! reachable distance plus a memoized deployment-wide noise supremum (see
//! [`Deployment::noise_sup_db`]). A screened-out cell provably cannot push
//! any configured entry margin nonpositive anywhere in the window — its
//! exclusion changes no [`EventConfig::entered`] verdict, because entry for
//! the neighbor-driven kinds is monotone in the neighbor level and decided
//! by the candidate maximum. The hot list is therefore a *superset* of the
//! cells that can matter, and the dry run over it returns the same refusal
//! tick the engine would produce. Candidate-list truncation in the engine's
//! leg view (per-band caps) can only shrink the engine's candidate set, so
//! the planner errs toward refusing earlier — never toward oversleeping.
//!
//! What keeps the dry run itself cheap is the fading term's structure: its
//! node gaussians are pure functions of time, shared by every UE a worker
//! plans in the same span, so a per-cell [`NodeCache`] makes exact fading
//! suprema nearly free. [`neighbor_pass`] runs each hot cell through a
//! screen cascade (whole-window, travel-box, per-tick) and pays for the
//! exact [`Cell::rx_dbm_memo`] replay only on the few ticks whose
//! optimistic bound could actually enter an event.
//!
//! Everything here reads shared immutable state (`Deployment`, hash-based
//! noise fields), so plans are identical at any thread/shard count.
//!
//! [`Deployment::noise_sup_db`]: fiveg_ran::Deployment::noise_sup_db
//! [`Cell::rx_dbm_cached`]: fiveg_ran::Cell::rx_dbm_cached
//! [`Cell::rx_dbm_memo`]: fiveg_ran::Cell::rx_dbm_memo
//! [`MobilityPeek`]: fiveg_ue::MobilityPeek
//! [`EventConfig::entered`]: fiveg_rrc::EventConfig::entered

use super::{UeSim, ANCHOR_MIN_FREQ_MHZ, RLF_DBM, SEARCH_RADIUS_M};
use fiveg_geo::Point;
use fiveg_radio::{ChannelCache, NodeCache};
use fiveg_ran::{Arch, CellId, Deployment};
use fiveg_rrc::{EventConfig, EventKind, MeasQuantity};

/// Safety slack (dB) on the screening margin: the screen sums the same
/// channel terms the engine sums, but in a different order, so the bound is
/// mathematically sound yet could disagree with the measured value in the
/// last few ulps. The dry run itself needs no slack — it computes the
/// engine's numbers, not bounds on them.
const MARGIN_EPS_DB: f64 = 1e-6;

/// Reusable buffers for [`plan_sleep`]. The fleet keeps one per worker and
/// threads it through every resident UE's plan, so steady-state planning
/// allocates nothing. The channel caches memoize noise-lattice nodes per
/// cell; memoization is exact (`rx_dbm_cached` is bit-identical to
/// `rx_dbm`), so recycling them across UEs and shards changes no plan.
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// Cells within the measurement radius of any reachable position.
    near: Vec<CellId>,
    /// One leg's screen survivors (reused leg by leg).
    hot: Vec<CellId>,
    /// Position after each future prologue, ticks `+1, +2, ..`.
    pos: Vec<Point>,
    /// Engine clock after each future prologue.
    t: Vec<f64>,
    /// LTE serving RSRP (engine-clamped) per future tick.
    s_lte: Vec<f64>,
    /// NR serving RSRP (engine-clamped) per future tick.
    s_nr: Vec<f64>,
    /// Per-cell noise-lattice memo, indexed by `CellId`.
    caches: Vec<ChannelCache>,
    /// Per-cell fading-node memo, indexed by `CellId`. Node gaussians are
    /// pure functions of time, so every UE the worker plans in the same
    /// span reuses them — the cache that makes exact per-tick fading
    /// bounds affordable.
    fad: Vec<NodeCache>,
}

/// Plans a sleep for `ue`: the number of consecutive future ticks that are
/// provably inert, `0` when the UE must step next tick. Capped at
/// `max_ticks` (the fleet caps by wheel horizon and remaining boundary
/// work). Pure: reads only UE + deployment state, so a plan is identical at
/// any thread/shard count regardless of which scratch is threaded in.
pub(crate) fn plan_sleep(ue: &UeSim<'_>, max_ticks: u64, scratch: &mut PlanScratch) -> u64 {
    if !eligible(ue) {
        return 0;
    }
    let PlanScratch { near, hot, pos, t, s_lte, s_nr, caches, fad } = scratch;
    // replay the mobility prologue: the horizon stops one tick short of the
    // first tick whose pre-step `active()` check would fail, so a sleep
    // never carries the UE across its route end or duration clamp
    let (horizon, travel) = mobility_pass(ue, max_ticks, pos, t);
    if horizon == 0 {
        return 0;
    }
    if caches.len() < ue.d.cells.len() {
        caches.resize(ue.d.cells.len(), ChannelCache::default());
        fad.resize_with(ue.d.cells.len(), NodeCache::default);
    }
    // exact serving series per leg: refuses RLF ticks and serving-only
    // (A1/A2) entries, and records the series the neighbor pass compares
    // against
    let arch = ue.s.arch;
    let mut vmin = horizon + 1; // first refused tick; horizon+1 = none
    if arch != Arch::Sa {
        let serving = ue.sm.serving_lte().expect("eligible() requires an attached LTE leg");
        vmin = vmin.min(serving_pass(ue, serving, ue.lte_engine.configs(), true, horizon, pos, t, s_lte, caches, fad));
    }
    if arch != Arch::Lte {
        let serving = ue.sm.serving_nr().expect("eligible() requires an attached NR leg");
        let rlf = arch == Arch::Sa; // the engine only fails/reattaches the NR leg under SA
        vmin = vmin.min(serving_pass(ue, serving, ue.nr_engine.configs(), rlf, horizon, pos, t, s_nr, caches, fad));
    }
    if vmin <= 1 {
        return 0;
    }
    let start = ue.mob.position();
    ue.d.cells_near_into(&start, SEARCH_RADIUS_M + travel, near);
    if arch != Arch::Sa {
        let serving = ue.sm.serving_lte().expect("eligible() requires an attached LTE leg");
        let cfgs = ue.lte_engine.configs();
        build_hot(ue.d, cfgs, serving, false, arch == Arch::Nsa, &start, travel, s_lte, near, hot, vmin);
        vmin = neighbor_pass(ue.d, cfgs, hot, serving, false, s_lte, &start, travel, pos, t, caches, fad, vmin);
        if vmin <= 1 {
            return 0;
        }
    }
    if arch != Arch::Lte {
        let serving = ue.sm.serving_nr().expect("eligible() requires an attached NR leg");
        let cfgs = ue.nr_engine.configs();
        build_hot(ue.d, cfgs, serving, true, false, &start, travel, s_nr, near, hot, vmin);
        vmin = neighbor_pass(ue.d, cfgs, hot, serving, true, s_nr, &start, travel, pos, t, caches, fad, vmin);
    }
    vmin - 1
}

/// Discrete-state quiescence: everything that could act on an arbitrary
/// tick regardless of radio levels.
fn eligible(ue: &UeSim<'_>) -> bool {
    // trace retention and data-plane flows sample every tick by design
    if ue.record_samples || ue.bulk.is_some() || ue.cbr.is_some() {
        return false;
    }
    // pending or queued HO work, or an open SCG-change window, forces
    // wakeup = next tick
    if ue.sm.busy() || !ue.policy.is_quiescent() {
        return false;
    }
    // a running TTT clock or an un-left fired event must keep stepping
    if !ue.lte_engine.all_idle() || !ue.nr_engine.all_idle() {
        return false;
    }
    // the dry run replays RSRP-quantity triggers exactly; SINR/RSRQ depend
    // on the whole interferer set, which the planner does not model, so any
    // such trigger keeps the UE on the fixed step
    let rsrp_only = |cfgs: &[EventConfig]| {
        cfgs.iter().all(|c| c.quantity == MeasQuantity::Rsrp || c.event.kind == EventKind::Periodic)
    };
    if !rsrp_only(ue.lte_engine.configs()) || !rsrp_only(ue.nr_engine.configs()) {
        return false;
    }
    // every present leg must be attached: an unattached leg re-attaches (or
    // B1-discovers) as soon as a candidate clears the floor, on any tick
    let arch = ue.s.arch;
    if arch != Arch::Sa && ue.sm.serving_lte().is_none() {
        return false;
    }
    if arch != Arch::Lte && ue.sm.serving_nr().is_none() {
        return false;
    }
    true
}

/// Replays the per-tick prologue for up to `max_ticks` future ticks:
/// `(pos, t)` after each prologue, in [`UeSim::catch_up`]'s exact
/// accumulation order. Returns `(horizon, travel)` — the longest grantable
/// window and the exact path distance covered over it. The fleet checks
/// [`UeSim::active`] *before* each tick but steps a woken UE without
/// re-checking, so a grant of `W` requires the UE to stay active through
/// its wake tick `W + 1`: the horizon ends *two* ticks short of a route
/// finish or duration clamp.
fn mobility_pass(ue: &UeSim<'_>, max_ticks: u64, pos: &mut Vec<Point>, t: &mut Vec<f64>) -> (u64, f64) {
    pos.clear();
    t.clear();
    let mut peek = ue.mob.peek();
    let mut clock = ue.t;
    for k in 1..=max_ticks + 1 {
        // `active()` as the fleet would check it before tick k: the state
        // after k-1 prologues
        if peek.finished() || clock >= ue.s.max_duration_s {
            return (k.saturating_sub(2).min(max_ticks), peek.travel());
        }
        if k > max_ticks {
            break;
        }
        clock += ue.dt;
        peek.step(ue.dt);
        pos.push(peek.position());
        t.push(clock);
    }
    (max_ticks, peek.travel())
}

/// One leg's exact serving series: computes the engine-clamped serving RSRP
/// for every future tick into `s`, returning the first tick the leg refuses
/// — an RLF (`rlf` legs only; the engine has no NR failure path under NSA)
/// or a serving-only A1/A2 entry — or `horizon + 1` when the serving side
/// is inert throughout. The neighbor-driven kinds read `s` later; their
/// empty-candidate substitute (−140 dBm) can never enter them, so they need
/// no check here.
#[allow(clippy::too_many_arguments)]
fn serving_pass(
    ue: &UeSim<'_>,
    serving: CellId,
    configs: &[EventConfig],
    rlf: bool,
    horizon: u64,
    pos: &[Point],
    t: &[f64],
    s: &mut Vec<f64>,
    caches: &mut [ChannelCache],
    fad: &mut [NodeCache],
) -> u64 {
    let c = ue.d.cell(serving);
    let cache = &mut caches[serving.0 as usize];
    let nodes = &mut fad[serving.0 as usize];
    s.clear();
    for k in 1..=horizon {
        let i = (k - 1) as usize;
        // the same evaluation + clamp chain as the leg view: rx_dbm (memo
        // form is bit-identical), then compute_rrs's RSRP clamp
        let v = c.rx_dbm_memo(&pos[i], t[i], cache, nodes).clamp(-140.0, -44.0);
        s.push(v);
        if rlf && v < RLF_DBM {
            return k;
        }
        for cfg in configs {
            if matches!(cfg.event.kind, EventKind::A1 | EventKind::A2) && cfg.entered(v, -140.0) {
                return k;
            }
        }
    }
    horizon + 1
}

/// Screens `near` down to the cells whose channel could plausibly trigger a
/// neighbor-driven event anywhere in the window: per cell, one path-loss
/// evaluation against the memoized deployment-wide noise supremum
/// ([`Deployment::noise_sup_db`]) instead of a lattice scan. The margin test
/// uses the *exact* serving minimum over the window (from the serving
/// pass), so the screen is as tight as the supremum allows. Cells left out
/// provably cannot change any [`EventConfig::entered`] verdict in the
/// window, so the dry run prices only the survivors.
#[allow(clippy::too_many_arguments)]
fn build_hot(
    d: &Deployment,
    configs: &[EventConfig],
    serving: CellId,
    nr: bool,
    anchor_only: bool,
    start: &Point,
    travel: f64,
    s: &[f64],
    near: &[CellId],
    hot: &mut Vec<CellId>,
    vmin: u64,
) {
    hot.clear();
    let s_cell = d.cell(serving);
    let s_freq = s_cell.band.freq_mhz;
    let s_group = meas_group(d, serving, nr);
    let s_min = s[..(vmin - 1) as usize].iter().fold(f64::INFINITY, |a, &b| a.min(b));
    for &id in near {
        if id == serving {
            continue;
        }
        let c = d.cell(id);
        if c.is_nr() != nr {
            continue;
        }
        if anchor_only && c.band.freq_mhz < ANCHOR_MIN_FREQ_MHZ {
            continue;
        }
        // upper bound on the cell's RSRP anywhere in the window, clamped as
        // the measurement would be (the clamp is monotone, so it survives)
        let screen = d.noise_sup_db(id, start, travel).map_or(f64::INFINITY, |sup| {
            (c.propagation.median_received_dbm(c.site.distance(start) - travel) + sup).clamp(-140.0, -44.0)
        });
        let a3_ok = (c.band.freq_mhz - s_freq).abs() < 1.0 && (s_group.is_none() || meas_group(d, id, nr) == s_group);
        if plausible(configs, a3_ok, s_min, screen) {
            hot.push(id);
        }
    }
}

/// One leg's exact neighbor dry run: for each hot cell, walk the window and
/// evaluate every relevant config's [`EventConfig::entered`] against the
/// cell's engine-clamped RSRP and the recorded serving series. Entry for
/// the neighbor-driven kinds is monotone in the neighbor level and decided
/// by the candidate maximum, so "some hot cell enters at tick k" is exactly
/// "the engine's best candidate enters at tick k" whenever that candidate
/// is hot — and it always is, because the screen only discards cells that
/// cannot enter. Returns the refused-tick minimum, which also shrinks the
/// remaining scan (no cell needs pricing past the earliest refusal found).
///
/// The fading term is what makes bounding hot cells cheap: its node
/// gaussians are pure functions of time, shared by every UE the worker
/// plans in the same span, so the per-cell [`NodeCache`] turns exact
/// fading suprema into array lookups. Each cell then runs a cascade —
///
/// 1. *window screen*: memoized deployment-wide shadowing sup + exact
///    fading sup over the window (O(1) amortized);
/// 2. *box screen*: exact shadowing extreme over the travel box (a lattice
///    corner scan, paid only by window-screen survivors);
/// 3. *tick screen + replay*: per tick, an optimistic level from the two
///    node gaussians the fading sample interpolates; only ticks whose
///    optimistic margin clears the slack pay for the exact
///    [`Cell::rx_dbm_memo`] + [`EventConfig::entered`] replay.
///
/// Every screen bounds the exact level from above (path loss is monotone
/// in distance, the travel box contains the path, pattern loss is
/// nonnegative, blockage only attenuates, a fading sample is a convex
/// blend of its nodes), so a skipped tick provably changes no verdict —
/// same monotone argument as [`build_hot`].
#[allow(clippy::too_many_arguments)]
fn neighbor_pass(
    d: &Deployment,
    configs: &[EventConfig],
    hot: &[CellId],
    serving: CellId,
    nr: bool,
    s: &[f64],
    start: &Point,
    travel: f64,
    pos: &[Point],
    t: &[f64],
    caches: &mut [ChannelCache],
    fad: &mut [NodeCache],
    mut vmin: u64,
) -> u64 {
    let s_cell = d.cell(serving);
    let s_freq = s_cell.band.freq_mhz;
    let s_group = meas_group(d, serving, nr);
    for &id in hot {
        let s_min = s[..(vmin - 1) as usize].iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let c = d.cell(id);
        let a3_ok = (c.band.freq_mhz - s_freq).abs() < 1.0 && (s_group.is_none() || meas_group(d, id, nr) == s_group);
        let p = &c.propagation;
        let nodes = &mut fad[id.0 as usize];
        let d_near = c.site.distance(start) - travel;
        let (pat_lo, _) = c.pattern_loss_bounds(start, travel);
        let fd_sup = p.fading_sup_over(t[0], t[(vmin - 2) as usize], nodes);
        // stage 1: O(1) window screen — deployment-wide shadowing sup +
        // exact window fading sup
        if let Some(sh_sup) = d.shadow_sup_db(id, start, travel) {
            let up = (p.median_received_dbm(d_near) + sh_sup - pat_lo + fd_sup).clamp(-140.0, -44.0);
            if !plausible(configs, a3_ok, s_min, up) {
                continue;
            }
        }
        // stage 2: exact shadowing extreme over the travel box
        let (_, sh_hi) = p.shadowing_range(start, travel);
        let base = p.median_received_dbm(d_near) + sh_hi - pat_lo;
        let up = (base + fd_sup).clamp(-140.0, -44.0);
        if !plausible(configs, a3_ok, s_min, up) {
            continue;
        }
        // stage 3: per-tick optimistic screen, exact replay on survivors
        let cache = &mut caches[id.0 as usize];
        'ticks: for k in 1..vmin {
            let i = (k - 1) as usize;
            let up_k = (base + p.fading_sup_at(t[i], nodes)).clamp(-140.0, -44.0);
            if !plausible(configs, a3_ok, s[i], up_k) {
                continue;
            }
            let val = c.rx_dbm_memo(&pos[i], t[i], cache, nodes).clamp(-140.0, -44.0);
            for cfg in configs {
                let relevant = match cfg.event.kind {
                    EventKind::A3 => a3_ok,
                    EventKind::A4 | EventKind::A5 | EventKind::B1 => true,
                    _ => false,
                };
                if relevant && cfg.entered(s[i], val) {
                    vmin = k;
                    break 'ticks;
                }
            }
        }
        if vmin <= 1 {
            return vmin;
        }
    }
    vmin
}

/// True when some configured neighbor-driven event could enter given the
/// serving floor `s` and a neighbor level of at most `up`.
fn plausible(configs: &[EventConfig], a3_ok: bool, s: f64, up: f64) -> bool {
    configs.iter().any(|cfg| {
        let relevant = match cfg.event.kind {
            EventKind::A3 => a3_ok,
            EventKind::A4 | EventKind::A5 | EventKind::B1 => true,
            _ => false,
        };
        relevant && cfg.entry_margin_db(s, up) <= MARGIN_EPS_DB
    })
}

/// The measurement group the leg view attaches to a cell: NR cells under
/// NSA group by gNB (tower) for the intra-gNB A3 filter; SA and LTE measure
/// across sites. Mirrors the leg view's `group_of` exactly.
fn meas_group(d: &Deployment, id: CellId, nr: bool) -> Option<u32> {
    if nr && d.arch == Arch::Nsa {
        Some(d.cell(id).tower.0)
    } else {
        None
    }
}
