//! Once-per-scenario trace sharing for experiment sweeps.
//!
//! A sweep evaluates several predictors against the *same* recorded drive:
//! re-simulating the scenario for every predictor wastes most of the wall
//! clock. [`TraceCache`] holds one slot per scenario; the first worker to
//! ask for a slot runs the simulation, every later worker (on any thread)
//! gets the same [`Arc<Trace>`] back. Because the simulator is
//! deterministic in the scenario seed, it does not matter *which* worker
//! wins the race — the resulting trace is identical either way.

use crate::scenario::Scenario;
use crate::trace::Trace;
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use std::sync::{Arc, OnceLock};

/// One generated-trace slot per scenario, shareable across worker threads
/// (`&TraceCache` is `Sync`; traces come back as cheap [`Arc`] clones).
pub struct TraceCache {
    slots: Vec<OnceLock<Entry>>,
}

#[derive(Clone)]
struct Entry {
    trace: Arc<Trace>,
    /// Deterministic sim-side counters of the instrumented run (empty when
    /// the generating run was not instrumented).
    counters: Vec<(String, u64)>,
}

impl TraceCache {
    /// A cache with `n` empty slots (scenario ids `0..n`).
    pub fn new(n: usize) -> TraceCache {
        TraceCache { slots: (0..n).map(|_| OnceLock::new()).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots whose trace has been generated so far.
    pub fn generated(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// Returns slot `id`'s trace, running `scenario` to fill it on first
    /// use. Concurrent callers for the same slot block until the first
    /// finishes, so each scenario is simulated exactly once.
    pub fn get_or_run(&self, id: usize, scenario: &Scenario) -> Arc<Trace> {
        self.entry(id, scenario).trace
    }

    /// Like [`get_or_run`](Self::get_or_run), additionally returning the
    /// generating run's deterministic telemetry counters (sim-side tick,
    /// HO and fault counters). The generating run is instrumented with
    /// [`TelemetryConfig::deterministic`] regardless of the scenario's own
    /// telemetry setting, so sweeps can roll sim counters up without
    /// re-simulating.
    pub fn get_or_run_counted(&self, id: usize, scenario: &Scenario) -> (Arc<Trace>, Vec<(String, u64)>) {
        let e = self.entry(id, scenario);
        (e.trace, e.counters)
    }

    fn entry(&self, id: usize, scenario: &Scenario) -> Entry {
        self.slots[id]
            .get_or_init(|| {
                let tele = Telemetry::new(TelemetryConfig::deterministic());
                let trace = scenario.run_instrumented(&tele);
                Entry { trace: Arc::new(trace), counters: tele.counters() }
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use fiveg_ran::{Arch, Carrier};

    fn tiny() -> Scenario {
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 2.0, 5).duration_s(30.0).sample_hz(5.0).build()
    }

    #[test]
    fn same_slot_simulates_once() {
        let cache = TraceCache::new(2);
        let s = tiny();
        let a = cache.get_or_run(0, &s);
        let b = cache.get_or_run(0, &s);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generated(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn counted_slot_reports_sim_counters() {
        let cache = TraceCache::new(1);
        let (trace, counters) = cache.get_or_run_counted(0, &tiny());
        assert!(!trace.samples.is_empty());
        assert!(counters.iter().any(|(n, v)| n == "sim.ticks" && *v > 0), "{counters:?}");
        // second call returns the identical roll-up
        let (_, again) = cache.get_or_run_counted(0, &tiny());
        assert_eq!(counters, again);
    }

    #[test]
    fn concurrent_callers_share_one_run() {
        let cache = TraceCache::new(1);
        let s = tiny();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| cache.get_or_run(0, &s))).collect();
            let traces: Vec<Arc<Trace>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for t in &traces[1..] {
                assert!(Arc::ptr_eq(&traces[0], t));
            }
        });
        assert_eq!(cache.generated(), 1);
    }
}
