//! Fault injection (in the smoltcp tradition: adverse conditions are
//! reproducible options, not special builds).
//!
//! * `mr_loss_prob` — uplink measurement reports are lost with this
//!   probability (the serving cell never learns about the event; the UE
//!   lingers on a degrading cell — the paper's "worst case: service
//!   outages" pathway);
//! * `ho_failure_prob` — a prepared HO fails at execution (the UE falls
//!   back to the source cell and the procedure re-runs on the next report).

use serde::{Deserialize, Serialize};

/// Fault-injection configuration for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that an uplink MR is lost, per report.
    pub mr_loss_prob: f64,
    /// Probability that a handover fails at execution, per HO.
    pub ho_failure_prob: f64,
}

impl FaultConfig {
    /// No faults.
    pub const NONE: FaultConfig = FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.0 };

    /// True when any fault is configured.
    pub fn active(&self) -> bool {
        self.mr_loss_prob > 0.0 || self.ho_failure_prob > 0.0
    }

    /// Checks that both probabilities are finite and within `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [("mr_loss_prob", self.mr_loss_prob), ("ho_failure_prob", self.ho_failure_prob)] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("FaultConfig.{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// A copy with both probabilities clamped to `[0, 1]` (NaN → 0). The
    /// engine runs on the clamped config, so out-of-range scenarios behave
    /// like their nearest valid counterpart instead of skewing RNG draws.
    pub fn clamped(&self) -> FaultConfig {
        fn clamp01(p: f64) -> f64 {
            if p.is_nan() {
                0.0
            } else {
                p.clamp(0.0, 1.0)
            }
        }
        FaultConfig { mr_loss_prob: clamp01(self.mr_loss_prob), ho_failure_prob: clamp01(self.ho_failure_prob) }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultConfig::NONE.active());
        assert!(!FaultConfig::default().active());
    }

    #[test]
    fn any_positive_prob_is_active() {
        assert!(FaultConfig { mr_loss_prob: 0.1, ho_failure_prob: 0.0 }.active());
        assert!(FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.05 }.active());
    }

    #[test]
    fn validate_accepts_unit_interval() {
        assert!(FaultConfig::NONE.validate().is_ok());
        assert!(FaultConfig { mr_loss_prob: 1.0, ho_failure_prob: 0.5 }.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let cases = [
            FaultConfig { mr_loss_prob: -0.1, ho_failure_prob: 0.0 },
            FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 1.5 },
            FaultConfig { mr_loss_prob: f64::NAN, ho_failure_prob: 0.0 },
            FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: f64::INFINITY },
        ];
        for c in cases {
            let err = c.validate().unwrap_err();
            assert!(err.contains("[0, 1]"), "{err}");
        }
    }

    proptest::proptest! {
        // Clamping must yield a valid config from ANY f64 bit pattern —
        // NaNs, infinities, subnormals, negative zero — be idempotent, and
        // agree with `active()`: clamping never turns a faulty config
        // fault-free or vice versa (NaN counts as no fault on both sides).
        #[test]
        fn clamped_always_validates_and_agrees_with_active(
            mr_bits in proptest::prelude::any::<u64>(),
            hof_bits in proptest::prelude::any::<u64>(),
        ) {
            let raw = FaultConfig { mr_loss_prob: f64::from_bits(mr_bits), ho_failure_prob: f64::from_bits(hof_bits) };
            let c = raw.clamped();
            proptest::prop_assert!(c.validate().is_ok(), "clamped {raw:?} -> {c:?} fails validate");
            proptest::prop_assert_eq!(c.clamped(), c, "clamping is not idempotent on {:?}", raw);
            proptest::prop_assert_eq!(raw.active(), c.active(), "active() changed by clamping {:?}", raw);
        }

        // On already-valid configs clamping is the identity: the engine's
        // clamp-on-entry can never change a well-formed scenario.
        #[test]
        fn clamping_fixes_valid_configs(mr in 0.0f64..=1.0, hof in 0.0f64..=1.0) {
            let c = FaultConfig { mr_loss_prob: mr, ho_failure_prob: hof };
            proptest::prop_assert!(c.validate().is_ok());
            proptest::prop_assert_eq!(c.clamped(), c);
        }
    }

    #[test]
    fn clamped_pins_to_unit_interval() {
        let c = FaultConfig { mr_loss_prob: -0.5, ho_failure_prob: 2.0 }.clamped();
        assert_eq!(c, FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 1.0 });
        let n = FaultConfig { mr_loss_prob: f64::NAN, ho_failure_prob: f64::NEG_INFINITY }.clamped();
        assert_eq!(n, FaultConfig::NONE);
        assert!(n.validate().is_ok());

        let valid = FaultConfig { mr_loss_prob: 0.25, ho_failure_prob: 0.75 };
        assert_eq!(valid.clamped(), valid);
    }
}
