//! Fault injection (in the smoltcp tradition: adverse conditions are
//! reproducible options, not special builds).
//!
//! * `mr_loss_prob` — uplink measurement reports are lost with this
//!   probability (the serving cell never learns about the event; the UE
//!   lingers on a degrading cell — the paper's "worst case: service
//!   outages" pathway);
//! * `ho_failure_prob` — a prepared HO fails at execution (the UE falls
//!   back to the source cell and the procedure re-runs on the next report).

use serde::{Deserialize, Serialize};

/// Fault-injection configuration for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that an uplink MR is lost, per report.
    pub mr_loss_prob: f64,
    /// Probability that a handover fails at execution, per HO.
    pub ho_failure_prob: f64,
}

impl FaultConfig {
    /// No faults.
    pub const NONE: FaultConfig = FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.0 };

    /// True when any fault is configured.
    pub fn active(&self) -> bool {
        self.mr_loss_prob > 0.0 || self.ho_failure_prob > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultConfig::NONE.active());
        assert!(!FaultConfig::default().active());
    }

    #[test]
    fn any_positive_prob_is_active() {
        assert!(FaultConfig { mr_loss_prob: 0.1, ho_failure_prob: 0.0 }.active());
        assert!(FaultConfig { mr_loss_prob: 0.0, ho_failure_prob: 0.05 }.active());
    }
}
