//! The prediction server: TCP/UDS listeners, a bounded ready-queue, and a
//! worker pool servicing many concurrent sessions.
//!
//! Concurrency lives entirely at this boundary. Each accepted connection
//! becomes a `Session` owning its socket, buffers, and a synchronous
//! [`SessionCore`]; workers pop a session, drain whatever bytes are
//! readable, apply every complete frame, write the replies, and push the
//! session back. A session touches one worker at a time, so the Prognos
//! core never needs a lock — determinism is per-session, scheduling is
//! server-wide.
//!
//! Failure isolation: a malformed frame, a codec error, or a session-state
//! violation answers with an ERROR frame and drops *that* session only.
//! Idle sessions past the deadline are dropped too. The accept path
//! enforces `max_sessions` — beyond it, new connections are closed
//! immediately rather than queued without bound.

use crate::proto::{self, Frame, ProtoError};
use crate::session::{SessionCore, SessionError};
use fiveg_telemetry::Histogram;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-session input buffer cap: a client that streams frames faster than
/// the worker drains them is malformed, not a reason to grow unbounded.
const IN_CAP: usize = 1 << 20;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (e.g. `127.0.0.1:0`), `None` to disable.
    pub tcp: Option<String>,
    /// Unix-domain-socket path, `None` to disable.
    pub uds: Option<PathBuf>,
    /// Worker threads servicing sessions.
    pub workers: usize,
    /// Accept cap: connections beyond this many live sessions are refused.
    pub max_sessions: usize,
    /// Per-prediction latency SLO, ms (server-side: parse→reply-queued).
    pub slo_ms: f64,
    /// Sessions silent for longer than this are dropped, s.
    pub idle_timeout_s: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { tcp: None, uds: None, workers: 2, max_sessions: 256, slo_ms: 50.0, idle_timeout_s: 30.0 }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Clone)]
pub struct StatsSnapshot {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections refused at the accept cap.
    pub rejected: u64,
    /// Sessions closed cleanly via BYE.
    pub completed: u64,
    /// Sessions whose peer closed without BYE.
    pub closed_eof: u64,
    /// Sessions dropped for protocol/session violations.
    pub dropped_malformed: u64,
    /// Sessions dropped at the idle deadline.
    pub dropped_idle: u64,
    /// Sessions dropped on socket errors.
    pub dropped_io: u64,
    /// PROGNOSIS replies produced.
    pub predictions: u64,
    /// Replies whose server-side latency exceeded the SLO.
    pub slo_miss: u64,
    /// Server-side per-prediction latency, ms.
    pub latency_ms: Histogram,
}

#[derive(Clone)]
struct Stats {
    accepted: u64,
    rejected: u64,
    completed: u64,
    closed_eof: u64,
    dropped_malformed: u64,
    dropped_idle: u64,
    dropped_io: u64,
    predictions: u64,
    slo_miss: u64,
    latency_ms: Histogram,
}

impl Stats {
    fn new() -> Stats {
        Stats {
            accepted: 0,
            rejected: 0,
            completed: 0,
            closed_eof: 0,
            dropped_malformed: 0,
            dropped_idle: 0,
            dropped_io: 0,
            predictions: 0,
            slo_miss: 0,
            latency_ms: Histogram::new(),
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted,
            rejected: self.rejected,
            completed: self.completed,
            closed_eof: self.closed_eof,
            dropped_malformed: self.dropped_malformed,
            dropped_idle: self.dropped_idle,
            dropped_io: self.dropped_io,
            predictions: self.predictions,
            slo_miss: self.slo_miss,
            latency_ms: self.latency_ms.clone(),
        }
    }
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(true),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

struct Session {
    conn: Conn,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    core: SessionCore,
    last_activity: Instant,
}

impl Session {
    fn new(conn: Conn) -> Session {
        Session { conn, inbuf: Vec::new(), outbuf: Vec::new(), core: SessionCore::new(), last_activity: Instant::now() }
    }

    /// Writes as much of `outbuf` as the socket accepts right now.
    /// Returns whether any bytes moved; `Err` means the socket is dead.
    fn try_flush(&mut self) -> io::Result<bool> {
        let mut wrote = 0;
        while wrote < self.outbuf.len() {
            match self.conn.write(&self.outbuf[wrote..]) {
                Ok(0) => return Err(io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => wrote += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.outbuf.drain(..wrote);
        Ok(wrote > 0)
    }

    /// Best-effort blocking-ish flush used right before dropping a session,
    /// so a final ERROR frame usually reaches the peer.
    fn flush_hard(&mut self) {
        for _ in 0..50 {
            match self.try_flush() {
                Ok(_) if self.outbuf.is_empty() => return,
                Ok(_) => thread::sleep(Duration::from_millis(1)),
                Err(_) => return,
            }
        }
    }
}

enum CloseReason {
    Completed,
    Eof,
    Malformed,
    Idle,
    Io,
}

enum Verdict {
    Continue { progressed: bool },
    Close(CloseReason),
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Session>>,
    cv: Condvar,
    shutdown: AtomicBool,
    live: AtomicUsize,
    stats: Mutex<Stats>,
}

impl Inner {
    fn admit(&self, conn: Conn) {
        if self.live.load(Ordering::Acquire) >= self.cfg.max_sessions {
            self.stats.lock().unwrap().rejected += 1;
            return; // conn drops, peer sees a clean close
        }
        if conn.set_nonblocking().is_err() {
            self.stats.lock().unwrap().dropped_io += 1;
            return;
        }
        self.live.fetch_add(1, Ordering::AcqRel);
        self.stats.lock().unwrap().accepted += 1;
        self.queue.lock().unwrap().push_back(Session::new(conn));
        self.cv.notify_one();
    }

    fn finalize(&self, mut s: Session, reason: CloseReason) {
        s.flush_hard();
        self.live.fetch_sub(1, Ordering::AcqRel);
        let mut st = self.stats.lock().unwrap();
        match reason {
            CloseReason::Completed => st.completed += 1,
            CloseReason::Eof => st.closed_eof += 1,
            CloseReason::Malformed => st.dropped_malformed += 1,
            CloseReason::Idle => st.dropped_idle += 1,
            CloseReason::Io => st.dropped_io += 1,
        }
    }
}

fn error_code(e: &ProtoError) -> u8 {
    let _ = e;
    1
}

fn session_error_code(e: &SessionError) -> u8 {
    let _ = e;
    2
}

/// One scheduling quantum for one session.
fn service(inner: &Inner, s: &mut Session) -> Verdict {
    let mut progressed = match s.try_flush() {
        Ok(p) => p,
        Err(_) => return Verdict::Close(CloseReason::Io),
    };

    // drain readable bytes
    let mut tmp = [0u8; 16 * 1024];
    let mut eof = false;
    loop {
        match s.conn.read(&mut tmp) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                s.inbuf.extend_from_slice(&tmp[..n]);
                progressed = true;
                if s.inbuf.len() > IN_CAP {
                    return Verdict::Close(CloseReason::Malformed);
                }
                if n < tmp.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close(CloseReason::Io),
        }
    }

    // apply every complete frame
    let mut off = 0;
    let mut predictions = 0u64;
    let mut slo_miss = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let verdict = loop {
        match proto::try_read_frame(&s.inbuf[off..]) {
            Ok(None) => break None,
            Ok(Some((frame, used))) => {
                off += used;
                let t0 = Instant::now();
                match s.core.apply(&frame) {
                    Ok(Some(reply)) => {
                        proto::write_frame(&mut s.outbuf, &reply);
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        predictions += 1;
                        slo_miss += u64::from(ms > inner.cfg.slo_ms);
                        latencies.push(ms);
                        progressed = true;
                    }
                    Ok(None) => progressed = true,
                    Err(e) => {
                        proto::write_frame(&mut s.outbuf, &Frame::Error { code: session_error_code(&e) });
                        break Some(CloseReason::Malformed);
                    }
                }
                if s.core.done() {
                    break Some(CloseReason::Completed);
                }
            }
            Err(e) => {
                proto::write_frame(&mut s.outbuf, &Frame::Error { code: error_code(&e) });
                break Some(CloseReason::Malformed);
            }
        }
    };
    if off > 0 {
        s.inbuf.drain(..off);
    }
    if predictions > 0 {
        let mut st = inner.stats.lock().unwrap();
        st.predictions += predictions;
        st.slo_miss += slo_miss;
        for ms in latencies {
            st.latency_ms.observe(ms);
        }
    }
    if let Some(reason) = verdict {
        return Verdict::Close(reason);
    }
    if s.try_flush().is_err() {
        return Verdict::Close(CloseReason::Io);
    }
    if eof {
        // a clean EOF has no half-frame left over; residue means the peer
        // died mid-frame
        return Verdict::Close(if s.inbuf.is_empty() { CloseReason::Eof } else { CloseReason::Malformed });
    }
    if progressed {
        s.last_activity = Instant::now();
    } else if s.last_activity.elapsed().as_secs_f64() > inner.cfg.idle_timeout_s {
        return Verdict::Close(CloseReason::Idle);
    }
    Verdict::Continue { progressed }
}

fn worker(inner: Arc<Inner>) {
    loop {
        let popped = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = inner.cv.wait_timeout(q, Duration::from_millis(5)).unwrap();
                q = guard;
            }
        };
        let Some(mut s) = popped else { return };
        if inner.shutdown.load(Ordering::Acquire) {
            inner.finalize(s, CloseReason::Io);
            continue;
        }
        match service(&inner, &mut s) {
            Verdict::Continue { progressed } => {
                inner.queue.lock().unwrap().push_back(s);
                inner.cv.notify_one();
                if !progressed {
                    // nothing moved: yield so an idle session doesn't spin
                    thread::sleep(Duration::from_micros(200));
                }
            }
            Verdict::Close(reason) => inner.finalize(s, reason),
        }
    }
}

fn acceptor_tcp(inner: Arc<Inner>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => inner.admit(Conn::Tcp(stream)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(Duration::from_millis(1)),
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

#[cfg(unix)]
fn acceptor_uds(inner: Arc<Inner>, listener: UnixListener) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => inner.admit(Conn::Uds(stream)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(Duration::from_millis(1)),
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// every thread; [`ServerHandle::shutdown`] does the same and returns the
/// final stats.
pub struct ServerHandle {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    /// Bound TCP address, when TCP was configured (port resolved).
    pub tcp_addr: Option<SocketAddr>,
    /// Bound UDS path, when UDS was configured.
    pub uds_path: Option<PathBuf>,
}

impl ServerHandle {
    /// A copy of the current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.lock().unwrap().snapshot()
    }

    /// Live session count right now.
    pub fn live_sessions(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Stops accepting, joins all threads, and returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the configured endpoints and starts acceptors plus the worker
/// pool. At least one of `tcp`/`uds` must be set.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    if cfg.tcp.is_none() && cfg.uds.is_none() {
        return Err(io::Error::new(ErrorKind::InvalidInput, "no endpoint: set tcp and/or uds"));
    }
    let inner = Arc::new(Inner {
        cfg: cfg.clone(),
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        live: AtomicUsize::new(0),
        stats: Mutex::new(Stats::new()),
    });
    let mut threads = Vec::new();
    let mut tcp_addr = None;
    if let Some(addr) = &cfg.tcp {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        let inner2 = Arc::clone(&inner);
        threads.push(thread::spawn(move || acceptor_tcp(inner2, listener)));
    }
    let mut uds_path = None;
    #[cfg(unix)]
    if let Some(path) = &cfg.uds {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        uds_path = Some(path.clone());
        let inner2 = Arc::clone(&inner);
        threads.push(thread::spawn(move || acceptor_uds(inner2, listener)));
    }
    #[cfg(not(unix))]
    if cfg.uds.is_some() {
        return Err(io::Error::new(ErrorKind::Unsupported, "uds endpoints need a unix platform"));
    }
    for _ in 0..cfg.workers.max(1) {
        let inner2 = Arc::clone(&inner);
        threads.push(thread::spawn(move || worker(inner2)));
    }
    Ok(ServerHandle { inner, threads, tcp_addr, uds_path })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_server(cfg_mut: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
        let mut cfg = ServeConfig { tcp: Some("127.0.0.1:0".into()), workers: 2, ..ServeConfig::default() };
        cfg_mut(&mut cfg);
        start(cfg).expect("server start")
    }

    #[test]
    fn no_endpoint_is_an_error() {
        assert!(start(ServeConfig::default()).is_err());
    }

    #[test]
    fn starts_and_shuts_down_cleanly() {
        let h = tcp_server(|_| {});
        assert!(h.tcp_addr.is_some());
        let st = h.shutdown();
        assert_eq!(st.accepted, 0);
    }

    #[test]
    fn garbage_stream_drops_only_that_session() {
        let h = tcp_server(|_| {});
        let addr = h.tcp_addr.unwrap();
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            // a frame with an unknown kind byte
            bad.write_all(&[0, 0, 0, 1, 0x42]).unwrap();
            bad.flush().unwrap();
            // server answers ERROR and closes; wait for the close
            let mut buf = Vec::new();
            let _ = bad.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = bad.read_to_end(&mut buf);
            let (frame, _) = proto::try_read_frame(&buf).unwrap().expect("error frame");
            assert!(matches!(frame, Frame::Error { .. }));
        }
        for _ in 0..500 {
            if h.stats().dropped_malformed == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        let st = h.shutdown();
        assert_eq!(st.dropped_malformed, 1);
        assert_eq!(st.accepted, 1);
    }

    #[test]
    fn accept_cap_refuses_excess_connections() {
        let h = tcp_server(|c| c.max_sessions = 1);
        let addr = h.tcp_addr.unwrap();
        let _held = TcpStream::connect(addr).unwrap();
        // wait until the first connection is admitted
        for _ in 0..500 {
            if h.stats().accepted == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.stats().accepted, 1);
        let mut refused = TcpStream::connect(addr).unwrap();
        // the refused peer sees EOF without any frame
        let mut buf = Vec::new();
        let _ = refused.set_read_timeout(Some(Duration::from_secs(5)));
        let n = refused.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0);
        for _ in 0..500 {
            if h.stats().rejected == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        let st = h.shutdown();
        assert_eq!(st.rejected, 1);
    }
}
