//! Per-connection session state: one Prognos instance driven by decoded
//! wire frames.
//!
//! [`SessionCore`] is the *entire* prediction path of the server — and it
//! is shared verbatim with [`crate::replay::replay_offline`], so the wire
//! service is equivalent to an offline Prognos replay *by construction*:
//! both consume the same decoded [`Frame`]s, in the same order, through the
//! same code. The server adds only transport (sockets, buffers, worker
//! scheduling) around it, which is exactly what the equivalence digest in
//! `BENCH_serve.json` verifies end to end.

use crate::proto::{action_ho, Frame, PROTO_VERSION};
use fiveg_ran::Arch;
use fiveg_rrc::RrcMessage;
use prognos::{Prognos, PrognosConfig, UeContext};

/// Why a frame was rejected. Any of these drops the session (the server
/// answers with [`Frame::Error`] first); other sessions are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// First frame of a session must be HELLO.
    ExpectedHello,
    /// HELLO arrived twice.
    DuplicateHello,
    /// HELLO carried an unsupported protocol version.
    BadVersion(u8),
    /// A server-only frame (PROGNOSIS/ERROR) arrived inbound.
    Inbound,
    /// A frame arrived after BYE.
    AfterBye,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ExpectedHello => write!(f, "first frame must be HELLO"),
            SessionError::DuplicateHello => write!(f, "duplicate HELLO"),
            SessionError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (want {PROTO_VERSION})")
            }
            SessionError::Inbound => write!(f, "server-only frame on the inbound path"),
            SessionError::AfterBye => write!(f, "frame after BYE"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Deterministic per-session work counters (machine-independent; these are
/// what `BENCH_serve.json` gates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounts {
    /// Inbound frames accepted.
    pub frames: u64,
    /// SAMPLE frames.
    pub samples: u64,
    /// REPORT frames.
    pub reports: u64,
    /// HANDOVER frames.
    pub handovers: u64,
    /// PREDICT frames answered.
    pub predictions: u64,
    /// Answers that predicted a handover.
    pub positives: u64,
}

impl SessionCounts {
    /// Elementwise sum, for fleet-level aggregation.
    pub fn add(&mut self, o: &SessionCounts) {
        self.frames += o.frames;
        self.samples += o.samples;
        self.reports += o.reports;
        self.handovers += o.handovers;
        self.predictions += o.predictions;
        self.positives += o.positives;
    }
}

struct Open {
    arch: Arch,
    ue: u32,
    pg: Prognos,
}

/// One session's prediction state machine: HELLO opens it, frames drive
/// Prognos, PREDICT yields a PROGNOSIS reply, BYE closes it.
#[derive(Default)]
pub struct SessionCore {
    open: Option<Open>,
    done: bool,
    counts: SessionCounts,
}

impl SessionCore {
    /// A fresh session awaiting HELLO.
    pub fn new() -> SessionCore {
        SessionCore::default()
    }

    /// The UE id announced in HELLO, once open.
    pub fn ue(&self) -> Option<u32> {
        self.open.as_ref().map(|o| o.ue)
    }

    /// True once BYE has been processed.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Work counters so far.
    pub fn counts(&self) -> SessionCounts {
        self.counts
    }

    /// Applies one inbound frame; returns the reply to send, if any.
    pub fn apply(&mut self, f: &Frame) -> Result<Option<Frame>, SessionError> {
        if self.done {
            return Err(SessionError::AfterBye);
        }
        if self.open.is_none() {
            return match f {
                Frame::Hello { ver, .. } if *ver != PROTO_VERSION => Err(SessionError::BadVersion(*ver)),
                Frame::Hello { arch, ue, .. } => {
                    self.open = Some(Open { arch: *arch, ue: *ue, pg: Prognos::new(PrognosConfig::default()) });
                    self.counts.frames += 1;
                    Ok(None)
                }
                _ => Err(SessionError::ExpectedHello),
            };
        }
        let open = self.open.as_mut().expect("checked above");
        let reply = match f {
            Frame::Hello { .. } => return Err(SessionError::DuplicateHello),
            Frame::Prognosis { .. } | Frame::Error { .. } => return Err(SessionError::Inbound),
            Frame::Config { msg: RrcMessage::MeasConfig { configs }, .. } => {
                open.pg.set_configs(configs.clone());
                None
            }
            Frame::Sample { t, lte, nr } => {
                self.counts.samples += 1;
                open.pg.on_sample(*t, lte, nr);
                None
            }
            Frame::Report { msg: RrcMessage::MeasurementReport { event, .. }, .. } => {
                self.counts.reports += 1;
                open.pg.on_report(*event);
                None
            }
            Frame::Handover { msg: RrcMessage::RrcReconfiguration { action }, .. } => {
                self.counts.handovers += 1;
                open.pg.on_handover(action_ho(action));
                None
            }
            Frame::Predict { t, has_scg, nr_band } => {
                self.counts.predictions += 1;
                let ctx = UeContext { arch: open.arch, has_scg: *has_scg, nr_band: *nr_band };
                let p = open.pg.predict(*t, &ctx);
                self.counts.positives += u64::from(p.ho.is_some());
                Some(Frame::Prognosis {
                    t: *t,
                    ho: p.ho,
                    ho_score: p.ho_score,
                    confidence: p.confidence,
                    lead_s: p.lead_s,
                })
            }
            Frame::Bye => {
                self.done = true;
                None
            }
            // the proto layer guarantees the rrc variant matches the frame
            // kind; a mismatch here means the frame was hand-built wrong
            Frame::Config { .. } | Frame::Report { .. } | Frame::Handover { .. } => return Err(SessionError::Inbound),
        };
        self.counts.frames += 1;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_radio::Rrs;
    use fiveg_rrc::{EventConfig, EventKind, MeasEvent, Pci};
    use prognos::{CellObs, LegSnapshot};

    fn hello() -> Frame {
        Frame::Hello { ver: PROTO_VERSION, arch: Arch::Sa, ue: 7 }
    }

    fn sample(t: f64) -> Frame {
        Frame::Sample {
            t,
            lte: LegSnapshot::empty(),
            nr: LegSnapshot {
                serving: Some(CellObs {
                    pci: Pci(5),
                    rrs: Rrs { rsrp_dbm: -95.0, rsrq_db: -11.0, sinr_db: 8.0 },
                    group: Some(1),
                }),
                neighbors: vec![],
            },
        }
    }

    #[test]
    fn non_hello_first_frame_is_rejected() {
        let mut s = SessionCore::new();
        assert_eq!(s.apply(&sample(0.0)), Err(SessionError::ExpectedHello));
        assert_eq!(s.apply(&Frame::Bye), Err(SessionError::ExpectedHello));
    }

    #[test]
    fn bad_version_and_duplicate_hello_rejected() {
        let mut s = SessionCore::new();
        assert_eq!(s.apply(&Frame::Hello { ver: 99, arch: Arch::Lte, ue: 0 }), Err(SessionError::BadVersion(99)));
        s.apply(&hello()).unwrap();
        assert_eq!(s.apply(&hello()), Err(SessionError::DuplicateHello));
    }

    #[test]
    fn predict_replies_and_counts() {
        let mut s = SessionCore::new();
        s.apply(&hello()).unwrap();
        s.apply(&Frame::Config {
            t: 0.0,
            msg: fiveg_rrc::RrcMessage::MeasConfig {
                configs: vec![EventConfig::typical(MeasEvent::nr(EventKind::A3))],
            },
        })
        .unwrap();
        for i in 0..10 {
            s.apply(&sample(i as f64 * 0.1)).unwrap();
        }
        let reply = s.apply(&Frame::Predict { t: 1.0, has_scg: true, nr_band: None }).unwrap();
        assert!(matches!(reply, Some(Frame::Prognosis { t, .. }) if t == 1.0));
        let c = s.counts();
        assert_eq!((c.frames, c.samples, c.predictions), (13, 10, 1));
        assert_eq!(s.ue(), Some(7));
    }

    #[test]
    fn bye_closes_the_session() {
        let mut s = SessionCore::new();
        s.apply(&hello()).unwrap();
        assert_eq!(s.apply(&Frame::Bye), Ok(None));
        assert!(s.done());
        assert_eq!(s.apply(&sample(0.0)), Err(SessionError::AfterBye));
    }

    #[test]
    fn inbound_server_frames_rejected() {
        let mut s = SessionCore::new();
        s.apply(&hello()).unwrap();
        assert_eq!(
            s.apply(&Frame::Prognosis { t: 0.0, ho: None, ho_score: 1.0, confidence: 0.0, lead_s: 0.0 }),
            Err(SessionError::Inbound)
        );
        assert_eq!(s.apply(&Frame::Error { code: 1 }), Err(SessionError::Inbound));
    }
}
