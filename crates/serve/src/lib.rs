//! # fiveg-serve — the online Prognos prediction service
//!
//! The paper's Prognos is designed to run *on device, online*: measurement
//! reports stream in, "will a handover happen, and which type?" answers
//! stream out. Everything else in this workspace replays Prognos inside
//! offline simulations; this crate serves it.
//!
//! * [`proto`] — the wire protocol: a thin binary frame envelope around
//!   real [`fiveg_rrc::codec`]-encoded RRC messages, plus the
//!   PREDICT/PROGNOSIS request-response pair.
//! * [`session`] — [`session::SessionCore`], the synchronous per-session
//!   prediction state machine (one Prognos per connection). Shared by the
//!   server and the offline replay, so wire answers are equivalent to an
//!   offline Prognos run *by construction*.
//! * [`server`] — TCP/UDS listeners, bounded accept, and a worker pool;
//!   all concurrency lives here, outside the deterministic core. Failure
//!   isolation per session: malformed input drops one connection, never
//!   the server.
//! * [`replay`] — converts fleet-recorded [`fiveg_sim::Trace`]s into
//!   canonical frame sequences and replays them offline (the ground truth
//!   the load generator compares the wire against).
//! * [`digest`] — the FNV-1a-64 prediction-equivalence digest over reply
//!   streams; equal digest ⇔ bit-identical predictions, cheap enough to
//!   gate in CI.
//!
//! Binaries: `serve` (the server) and `serve_load` (the load generator,
//! which writes `BENCH_serve.json`, schema `fiveg-serve/v1`).

pub mod digest;
pub mod proto;
pub mod replay;
pub mod server;
pub mod session;

pub use digest::{combine_sessions, digest_replies, hex16, Fnv64};
pub use proto::{Frame, ProtoError, MAX_FRAME, PROTO_VERSION};
pub use replay::{replay_offline, trace_frames, OfflineReplay};
pub use server::{start, ServeConfig, ServerHandle, StatsSnapshot};
pub use session::{SessionCore, SessionCounts, SessionError};
