//! Turning recorded traces into wire frames, and replaying frames offline.
//!
//! [`trace_frames`] converts one fleet-recorded [`Trace`] into the exact
//! frame sequence a live UE would emit: HELLO, the MeasConfig, then per
//! sample the radio snapshot, any due measurement reports and HO commands,
//! and a PREDICT — the same per-tick ordering the offline scorer
//! (`fiveg_bench::driver::run_prognos`) uses, with the same
//! measurement-object group derivation. Frames are *canonicalized* (one
//! encode/decode round trip) before being returned, so the client-side
//! offline replay and the server both consume values already on the RRC
//! codec's centi-dB grid — byte-identical inputs on both paths.
//!
//! [`replay_offline`] is the ground truth the server is compared against:
//! the same [`SessionCore`] the server runs, fed directly.

use crate::proto::{self, Frame, PROTO_VERSION};
use crate::session::{SessionCore, SessionCounts, SessionError};
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, HandoverRecord, HoType};
use fiveg_rrc::{NeighborMeas, Pci, ReconfigAction};
use fiveg_sim::Trace;
use prognos::{CellObs, LegSnapshot};

/// FNV-1a-32 over the band name — the measurement-object group key for
/// frequency-scoped events (identical to the offline scorer's).
fn freq_key(band: &str) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in band.bytes() {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// The HO command a recorded handover would have arrived as.
fn ho_action(h: &HandoverRecord) -> ReconfigAction {
    let target = h.target.unwrap_or(Pci(0));
    match h.ho_type {
        HoType::Lteh => ReconfigAction::LteHandover { target },
        HoType::Mnbh => ReconfigAction::MenbHandover { target },
        HoType::Scga => ReconfigAction::ScgAddition { nr_target: target },
        HoType::Scgr => ReconfigAction::ScgRelease,
        HoType::Scgm => ReconfigAction::ScgModification { nr_target: target },
        HoType::Scgc => ReconfigAction::ScgChange { nr_target: target },
        HoType::Mcgh => ReconfigAction::McgHandover { target },
    }
}

/// Converts a recorded trace into the canonical wire-frame sequence for
/// session id `ue`.
pub fn trace_frames(trace: &Trace, ue: u32) -> Vec<Frame> {
    let lte_obs =
        |cell: u32, rrs| CellObs { pci: Pci(trace.cell(cell).pci), rrs, group: Some(freq_key(&trace.cell(cell).band)) };
    let nr_obs = |cell: u32, rrs| CellObs {
        pci: Pci(trace.cell(cell).pci),
        rrs,
        group: if trace.meta.arch == Arch::Nsa {
            Some(trace.cell(cell).tower)
        } else {
            Some(freq_key(&trace.cell(cell).band))
        },
    };

    let mut frames = Vec::with_capacity(trace.samples.len() * 2 + trace.reports.len() + 4);
    frames.push(Frame::Hello { ver: PROTO_VERSION, arch: trace.meta.arch, ue });
    frames.push(Frame::Config { t: 0.0, msg: fiveg_rrc::RrcMessage::MeasConfig { configs: trace.configs.clone() } });

    let mut rep_i = 0usize;
    let mut ho_i = 0usize;
    for s in &trace.samples {
        frames.push(Frame::Sample {
            t: s.t,
            lte: LegSnapshot {
                serving: s.lte_cell.zip(s.lte_rrs).map(|(c, r)| lte_obs(c, r)),
                neighbors: s.lte_neighbors.iter().map(|&(c, r)| lte_obs(c, r)).collect(),
            },
            nr: LegSnapshot {
                serving: s.nr_cell.zip(s.nr_rrs).map(|(c, r)| nr_obs(c, r)),
                neighbors: s.nr_neighbors.iter().map(|&(c, r)| nr_obs(c, r)).collect(),
            },
        });
        while rep_i < trace.reports.len() && trace.reports[rep_i].t <= s.t {
            let r = &trace.reports[rep_i];
            frames.push(Frame::Report {
                t: s.t,
                msg: fiveg_rrc::RrcMessage::MeasurementReport {
                    event: r.event,
                    serving_pci: Pci(r.serving_pci),
                    serving_rrs: fiveg_radio::Rrs { rsrp_dbm: 0.0, rsrq_db: 0.0, sinr_db: 0.0 },
                    neighbors: r
                        .neighbor_pcis
                        .iter()
                        .map(|&p| NeighborMeas {
                            pci: Pci(p),
                            rrs: fiveg_radio::Rrs { rsrp_dbm: 0.0, rsrq_db: 0.0, sinr_db: 0.0 },
                        })
                        .collect(),
                },
            });
            rep_i += 1;
        }
        while ho_i < trace.handovers.len() && trace.handovers[ho_i].t_command <= s.t {
            frames.push(Frame::Handover {
                t: s.t,
                msg: fiveg_rrc::RrcMessage::RrcReconfiguration { action: ho_action(&trace.handovers[ho_i]) },
            });
            ho_i += 1;
        }
        let nr_band: Option<BandClass> = s
            .nr_cell
            .map(|c| trace.cell(c).class)
            .or_else(|| s.nr_neighbors.first().map(|&(c, _)| trace.cell(c).class));
        frames.push(Frame::Predict { t: s.t, has_scg: s.nr_cell.is_some(), nr_band });
    }
    frames.push(Frame::Bye);
    canonicalize(frames)
}

/// One encode/decode round trip per frame: pins every dB value to the RRC
/// codec's centi-dB grid so the wire and the offline replay see identical
/// inputs. Canonicalized frames are a fixed point of this map (covered by
/// a proto test).
fn canonicalize(frames: Vec<Frame>) -> Vec<Frame> {
    let mut buf = Vec::new();
    frames
        .into_iter()
        .map(|f| {
            buf.clear();
            proto::write_frame(&mut buf, &f);
            let (back, used) = proto::try_read_frame(&buf).expect("self-encoded frame").expect("complete");
            debug_assert_eq!(used, buf.len());
            back
        })
        .collect()
}

/// The result of an offline replay: every reply the server would have
/// produced, plus the session's work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineReplay {
    /// PROGNOSIS replies, in request order.
    pub replies: Vec<Frame>,
    /// Deterministic work counters.
    pub counts: SessionCounts,
}

/// Replays `frames` through a fresh [`SessionCore`] — the exact code the
/// server runs per session, minus the sockets.
pub fn replay_offline(frames: &[Frame]) -> Result<OfflineReplay, SessionError> {
    let mut core = SessionCore::new();
    let mut replies = Vec::new();
    for f in frames {
        if let Some(reply) = core.apply(f)? {
            replies.push(reply);
        }
    }
    Ok(OfflineReplay { replies, counts: core.counts() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Carrier;
    use fiveg_sim::ScenarioBuilder;

    fn small_trace() -> Trace {
        let sc = ScenarioBuilder::city_loop(Carrier::OpY, 201).arch(Arch::Sa).duration_s(20.0).sample_hz(10.0).build();
        fiveg_sim::engine::run(&sc)
    }

    #[test]
    fn frame_sequence_shape_matches_the_trace() {
        let trace = small_trace();
        let frames = trace_frames(&trace, 3);
        assert!(matches!(frames[0], Frame::Hello { ue: 3, arch: Arch::Sa, .. }));
        assert!(matches!(frames[1], Frame::Config { .. }));
        assert!(matches!(frames.last(), Some(Frame::Bye)));
        let samples = frames.iter().filter(|f| matches!(f, Frame::Sample { .. })).count();
        let predicts = frames.iter().filter(|f| matches!(f, Frame::Predict { .. })).count();
        assert_eq!(samples, trace.samples.len());
        assert_eq!(predicts, trace.samples.len(), "one PREDICT per sample");
    }

    #[test]
    fn offline_replay_answers_every_predict_deterministically() {
        let trace = small_trace();
        let frames = trace_frames(&trace, 0);
        let a = replay_offline(&frames).expect("replay");
        let b = replay_offline(&frames).expect("replay");
        assert_eq!(a.replies.len(), trace.samples.len());
        assert_eq!(a, b, "offline replay must be deterministic");
        assert_eq!(a.counts.samples, trace.samples.len() as u64);
        assert_eq!(a.counts.predictions, trace.samples.len() as u64);
        // reports/handovers past the final sample's time are never delivered
        assert!(a.counts.reports <= trace.reports.len() as u64);
        assert!(a.counts.handovers as usize <= trace.handovers.len());
    }

    #[test]
    fn canonicalization_is_a_fixed_point() {
        let trace = small_trace();
        let frames = trace_frames(&trace, 0);
        assert_eq!(canonicalize(frames.clone()), frames);
    }
}
