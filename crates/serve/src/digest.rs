//! The prediction-equivalence digest.
//!
//! A 64-bit FNV-1a over every PROGNOSIS reply's exact bit patterns
//! (request time, HO tag, score, confidence, lead). Two reply streams hash
//! equal iff they are bit-identical, so a digest match between the wire
//! path and the offline replay *is* byte-level prediction equivalence —
//! cheap enough to gate in CI against a committed baseline, since the
//! Prognos pipeline is deterministic for a pinned workload.

use crate::proto::{ho_wire_tag, Frame};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-64.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// The offset-basis state.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digests a reply stream; non-PROGNOSIS frames are ignored.
pub fn digest_replies(replies: &[Frame]) -> u64 {
    let mut h = Fnv64::new();
    for r in replies {
        if let Frame::Prognosis { t, ho, ho_score, confidence, lead_s } = r {
            h.update(&t.to_bits().to_be_bytes());
            h.update(&[ho.map(ho_wire_tag).unwrap_or(0)]);
            h.update(&ho_score.to_bits().to_be_bytes());
            h.update(&confidence.to_bits().to_be_bytes());
            h.update(&lead_s.to_bits().to_be_bytes());
        }
    }
    h.finish()
}

/// Combines per-session digests (in session order) into one fleet digest.
pub fn combine_sessions(per_session: &[(u32, u64)]) -> u64 {
    let mut h = Fnv64::new();
    for (ue, d) in per_session {
        h.update(&ue.to_be_bytes());
        h.update(&d.to_be_bytes());
    }
    h.finish()
}

/// Fixed-width lowercase hex, the form reports and baselines carry.
pub fn hex16(d: u64) -> String {
    format!("{d:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::HoType;

    fn reply(t: f64, ho: Option<HoType>) -> Frame {
        Frame::Prognosis { t, ho, ho_score: 0.9, confidence: 0.5, lead_s: 0.4 }
    }

    #[test]
    fn fnv_vectors() {
        // standard FNV-1a-64 test vectors
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = vec![reply(1.0, None), reply(2.0, Some(HoType::Lteh))];
        let b = vec![reply(2.0, Some(HoType::Lteh)), reply(1.0, None)];
        let c = vec![reply(1.0, None), reply(2.0, Some(HoType::Mcgh))];
        assert_ne!(digest_replies(&a), digest_replies(&b));
        assert_ne!(digest_replies(&a), digest_replies(&c));
        assert_eq!(digest_replies(&a), digest_replies(&a.clone()));
    }

    #[test]
    fn non_prognosis_frames_do_not_contribute() {
        let a = vec![reply(1.0, None)];
        let b = vec![Frame::Bye, reply(1.0, None), Frame::Error { code: 1 }];
        assert_eq!(digest_replies(&a), digest_replies(&b));
    }

    #[test]
    fn combined_digest_depends_on_session_identity_and_order() {
        let x = combine_sessions(&[(0, 1), (1, 2)]);
        let y = combine_sessions(&[(1, 2), (0, 1)]);
        let z = combine_sessions(&[(0, 1), (2, 2)]);
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
    }
}
