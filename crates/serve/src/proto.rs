//! Wire protocol of the serving layer.
//!
//! Every RRC-shaped payload on the wire — measurement configurations,
//! measurement reports (both the observed ones and the per-tick Periodic
//! radio snapshots), and HO commands — is carried as a real
//! [`fiveg_rrc::codec`]-encoded message, so the serving path accounts and
//! exercises the exact same bytes the signaling model does. Around those
//! messages sits a thin frame envelope for what RRC itself does not carry:
//! sim-time, session identity, measurement-object groups, and the
//! prediction request/response pair.
//!
//! Framing (all multi-byte integers big-endian):
//!
//! ```text
//! len:u32  kind:u8  payload[len-1]
//!
//! 0x01 HELLO     ver:u8, arch:u8 (0=LTE 1=NSA 2=SA), ue:u32
//! 0x02 CONFIG    t:u64(f64 bits), n:u16, rrc[n]      (MeasConfig)
//! 0x03 SAMPLE    t:u64, leg(LTE), leg(NR)            (two Periodic reports)
//! 0x04 REPORT    t:u64, n:u16, rrc[n]                (MeasurementReport)
//! 0x05 HANDOVER  t:u64, n:u16, rrc[n]                (RrcReconfiguration)
//! 0x06 PREDICT   t:u64, has_scg:u8, nr_band:u8 (0=none 1=low 2=mid 3=mmw)
//! 0x07 BYE
//! 0x81 PROGNOSIS t:u64, ho:u8 (0=none), ho_score:u64, confidence:u64, lead_s:u64
//! 0xFF ERROR     code:u8
//!
//! leg := flags:u8 (bit0 = serving present), n:u16, rrc[n],
//!        g:u8, g × (present:u8, group:u32)   (serving first, then neighbors)
//! ```
//!
//! `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME`]; a frame must parse to exactly its length (the same exact
//! framing rule the RRC codec enforces), so any residue is corruption, not
//! slack. f64 values travel as IEEE-754 bit patterns — lossless, so the
//! server and an offline replay of the same frames agree bit-for-bit.

use bytes::Bytes;
use fiveg_radio::{BandClass, Rrs};
use fiveg_ran::{Arch, HoType};
use fiveg_rrc::{codec, CodecError, EventKind, MeasEvent, NeighborMeas, Pci, ReconfigAction, RrcMessage};
use prognos::{CellObs, LegSnapshot};

/// Protocol version carried in HELLO.
pub const PROTO_VERSION: u8 = 1;

/// Hard cap on `len` (kind + payload bytes) — anything larger is malformed.
pub const MAX_FRAME: usize = 64 * 1024;

const KIND_HELLO: u8 = 0x01;
const KIND_CONFIG: u8 = 0x02;
const KIND_SAMPLE: u8 = 0x03;
const KIND_REPORT: u8 = 0x04;
const KIND_HANDOVER: u8 = 0x05;
const KIND_PREDICT: u8 = 0x06;
const KIND_BYE: u8 = 0x07;
const KIND_PROGNOSIS: u8 = 0x81;
const KIND_ERROR: u8 = 0xFF;

/// Placeholder PCI for an absent serving leg inside a SAMPLE's Periodic
/// report (the flags bit, not this value, is authoritative).
const NO_SERVING_PCI: u16 = 0xFFFF;

/// Framing/validation failure. Any of these poisons the *session* (the
/// stream offset is no longer trustworthy), never the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Declared frame length exceeds [`MAX_FRAME`] (or is zero).
    BadLength(u32),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Payload too short, too long, or internally inconsistent.
    Malformed,
    /// Embedded RRC message failed to decode.
    Codec(CodecError),
    /// Embedded RRC message decoded to the wrong variant for its frame.
    WrongRrc,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            ProtoError::Malformed => write!(f, "malformed frame payload"),
            ProtoError::Codec(e) => write!(f, "embedded rrc message: {e}"),
            ProtoError::WrongRrc => write!(f, "embedded rrc message has the wrong variant"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> ProtoError {
        ProtoError::Codec(e)
    }
}

/// One protocol frame, client→server (HELLO..BYE) or server→client
/// (PROGNOSIS, ERROR).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Opens a session: protocol version, architecture, UE id.
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        ver: u8,
        /// Architecture the UE operates under.
        arch: Arch,
        /// Caller-chosen UE/session id (reported back in stats).
        ue: u32,
    },
    /// Installs measurement-event configurations; `msg` must be
    /// [`RrcMessage::MeasConfig`].
    Config {
        /// Sim-time, s.
        t: f64,
        /// The encoded-and-decoded RRC message.
        msg: RrcMessage,
    },
    /// One tick of radio observations for both legs, groups included.
    Sample {
        /// Sim-time, s.
        t: f64,
        /// LTE leg snapshot.
        lte: LegSnapshot,
        /// NR leg snapshot.
        nr: LegSnapshot,
    },
    /// An observed (fired) measurement report; `msg` must be
    /// [`RrcMessage::MeasurementReport`].
    Report {
        /// Sim-time, s.
        t: f64,
        /// The encoded-and-decoded RRC message.
        msg: RrcMessage,
    },
    /// An observed HO command; `msg` must be
    /// [`RrcMessage::RrcReconfiguration`].
    Handover {
        /// Sim-time, s.
        t: f64,
        /// The encoded-and-decoded RRC message.
        msg: RrcMessage,
    },
    /// Asks for a prognosis under the given radio context.
    Predict {
        /// Sim-time, s.
        t: f64,
        /// SCG currently attached.
        has_scg: bool,
        /// Serving/strongest NR band class, if any.
        nr_band: Option<BandClass>,
    },
    /// Orderly end of session.
    Bye,
    /// Server reply to [`Frame::Predict`].
    Prognosis {
        /// Echo of the request time, s.
        t: f64,
        /// Predicted HO type (`None` = no HO expected).
        ho: Option<HoType>,
        /// Expected multiplicative throughput change.
        ho_score: f64,
        /// Pattern similarity backing the prediction.
        confidence: f64,
        /// Estimated lead time, s.
        lead_s: f64,
    },
    /// Server-side failure notice; the server closes the session after
    /// sending it.
    Error {
        /// Coarse failure class (1 = protocol, 2 = session state).
        code: u8,
    },
}

/// HoType → wire tag (1-based; 0 means "no HO" in PROGNOSIS).
pub fn ho_wire_tag(ho: HoType) -> u8 {
    match ho {
        HoType::Lteh => 1,
        HoType::Mnbh => 2,
        HoType::Scga => 3,
        HoType::Scgr => 4,
        HoType::Scgm => 5,
        HoType::Scgc => 6,
        HoType::Mcgh => 7,
    }
}

fn ho_from_wire(tag: u8) -> Option<HoType> {
    Some(match tag {
        1 => HoType::Lteh,
        2 => HoType::Mnbh,
        3 => HoType::Scga,
        4 => HoType::Scgr,
        5 => HoType::Scgm,
        6 => HoType::Scgc,
        7 => HoType::Mcgh,
        _ => return None,
    })
}

/// The HO type announced by a reconfiguration action — the same bijection
/// the signaling model uses between HO procedures and their commands.
pub fn action_ho(a: &ReconfigAction) -> HoType {
    match a {
        ReconfigAction::LteHandover { .. } => HoType::Lteh,
        ReconfigAction::MenbHandover { .. } => HoType::Mnbh,
        ReconfigAction::ScgAddition { .. } => HoType::Scga,
        ReconfigAction::ScgRelease => HoType::Scgr,
        ReconfigAction::ScgModification { .. } => HoType::Scgm,
        ReconfigAction::ScgChange { .. } => HoType::Scgc,
        ReconfigAction::McgHandover { .. } => HoType::Mcgh,
    }
}

fn arch_wire_tag(a: Arch) -> u8 {
    match a {
        Arch::Lte => 0,
        Arch::Nsa => 1,
        Arch::Sa => 2,
    }
}

fn arch_from_wire(tag: u8) -> Option<Arch> {
    Some(match tag {
        0 => Arch::Lte,
        1 => Arch::Nsa,
        2 => Arch::Sa,
        _ => return None,
    })
}

fn band_wire_tag(b: Option<BandClass>) -> u8 {
    match b {
        None => 0,
        Some(BandClass::Low) => 1,
        Some(BandClass::Mid) => 2,
        Some(BandClass::MmWave) => 3,
    }
}

fn band_from_wire(tag: u8) -> Result<Option<BandClass>, ProtoError> {
    Ok(match tag {
        0 => None,
        1 => Some(BandClass::Low),
        2 => Some(BandClass::Mid),
        3 => Some(BandClass::MmWave),
        _ => return Err(ProtoError::Malformed),
    })
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn push_rrc(out: &mut Vec<u8>, msg: &RrcMessage) {
    let bytes = codec::encode(msg);
    push_u16(out, bytes.len() as u16);
    out.extend_from_slice(&bytes.to_vec());
}

fn push_leg(out: &mut Vec<u8>, leg: &LegSnapshot, periodic: MeasEvent) {
    out.push(u8::from(leg.serving.is_some()));
    let msg = RrcMessage::MeasurementReport {
        event: periodic,
        serving_pci: leg.serving.map(|c| c.pci).unwrap_or(Pci(NO_SERVING_PCI)),
        serving_rrs: leg.serving.map(|c| c.rrs).unwrap_or(Rrs { rsrp_dbm: 0.0, rsrq_db: 0.0, sinr_db: 0.0 }),
        neighbors: leg.neighbors.iter().map(|c| NeighborMeas { pci: c.pci, rrs: c.rrs }).collect(),
    };
    push_rrc(out, &msg);
    let groups: Vec<Option<u32>> = leg.serving.iter().chain(leg.neighbors.iter()).map(|c| c.group).collect();
    out.push(groups.len().min(255) as u8);
    for g in groups.iter().take(255) {
        out.push(u8::from(g.is_some()));
        push_u32(out, g.unwrap_or(0));
    }
}

/// Appends the framed encoding of `f` to `out`.
pub fn write_frame(out: &mut Vec<u8>, f: &Frame) {
    let len_at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    match f {
        Frame::Hello { ver, arch, ue } => {
            out.push(KIND_HELLO);
            out.push(*ver);
            out.push(arch_wire_tag(*arch));
            push_u32(out, *ue);
        }
        Frame::Config { t, msg } => {
            debug_assert!(matches!(msg, RrcMessage::MeasConfig { .. }));
            out.push(KIND_CONFIG);
            push_f64(out, *t);
            push_rrc(out, msg);
        }
        Frame::Sample { t, lte, nr } => {
            out.push(KIND_SAMPLE);
            push_f64(out, *t);
            push_leg(out, lte, MeasEvent::lte(EventKind::Periodic));
            push_leg(out, nr, MeasEvent::nr(EventKind::Periodic));
        }
        Frame::Report { t, msg } => {
            debug_assert!(matches!(msg, RrcMessage::MeasurementReport { .. }));
            out.push(KIND_REPORT);
            push_f64(out, *t);
            push_rrc(out, msg);
        }
        Frame::Handover { t, msg } => {
            debug_assert!(matches!(msg, RrcMessage::RrcReconfiguration { .. }));
            out.push(KIND_HANDOVER);
            push_f64(out, *t);
            push_rrc(out, msg);
        }
        Frame::Predict { t, has_scg, nr_band } => {
            out.push(KIND_PREDICT);
            push_f64(out, *t);
            out.push(u8::from(*has_scg));
            out.push(band_wire_tag(*nr_band));
        }
        Frame::Bye => out.push(KIND_BYE),
        Frame::Prognosis { t, ho, ho_score, confidence, lead_s } => {
            out.push(KIND_PROGNOSIS);
            push_f64(out, *t);
            out.push(ho.map(ho_wire_tag).unwrap_or(0));
            push_f64(out, *ho_score);
            push_f64(out, *confidence);
            push_f64(out, *lead_s);
        }
        Frame::Error { code } => {
            out.push(KIND_ERROR);
            out.push(*code);
        }
    }
    let len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_be_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.data.len() - self.pos < n {
            return Err(ProtoError::Malformed);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(u64::from_be_bytes(self.take(8)?.try_into().unwrap())))
    }

    fn rrc(&mut self) -> Result<RrcMessage, ProtoError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        Ok(codec::decode(Bytes::from(bytes.to_vec()))?)
    }

    fn leg(&mut self, periodic: MeasEvent) -> Result<LegSnapshot, ProtoError> {
        let flags = self.u8()?;
        let serving_present = flags & 1 != 0;
        let (serving_pci, serving_rrs, neighbors) = match self.rrc()? {
            RrcMessage::MeasurementReport { event, serving_pci, serving_rrs, neighbors } if event == periodic => {
                (serving_pci, serving_rrs, neighbors)
            }
            _ => return Err(ProtoError::WrongRrc),
        };
        let ngroups = self.u8()? as usize;
        if ngroups != usize::from(serving_present) + neighbors.len() {
            return Err(ProtoError::Malformed);
        }
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let present = self.u8()? != 0;
            let g = self.u32()?;
            groups.push(present.then_some(g));
        }
        let mut gi = groups.into_iter();
        Ok(LegSnapshot {
            serving: serving_present.then(|| CellObs {
                pci: serving_pci,
                rrs: serving_rrs,
                group: gi.next().flatten(),
            }),
            neighbors: neighbors
                .into_iter()
                .map(|n| CellObs { pci: n.pci, rrs: n.rrs, group: gi.next().flatten() })
                .collect(),
        })
    }
}

/// Attempts to parse one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (read more and retry), `Ok(Some((frame, consumed)))` on success, and an
/// error when the stream is corrupt — after which the byte offset can no
/// longer be trusted and the session must be dropped.
pub fn try_read_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtoError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
    if len == 0 || len as usize > MAX_FRAME {
        return Err(ProtoError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[4..total];
    let mut c = Cursor { data: &body[1..], pos: 0 };
    let frame = match body[0] {
        KIND_HELLO => {
            let ver = c.u8()?;
            let arch = arch_from_wire(c.u8()?).ok_or(ProtoError::Malformed)?;
            let ue = c.u32()?;
            Frame::Hello { ver, arch, ue }
        }
        KIND_CONFIG => {
            let t = c.f64()?;
            let msg = c.rrc()?;
            if !matches!(msg, RrcMessage::MeasConfig { .. }) {
                return Err(ProtoError::WrongRrc);
            }
            Frame::Config { t, msg }
        }
        KIND_SAMPLE => {
            let t = c.f64()?;
            let lte = c.leg(MeasEvent::lte(EventKind::Periodic))?;
            let nr = c.leg(MeasEvent::nr(EventKind::Periodic))?;
            Frame::Sample { t, lte, nr }
        }
        KIND_REPORT => {
            let t = c.f64()?;
            let msg = c.rrc()?;
            if !matches!(msg, RrcMessage::MeasurementReport { .. }) {
                return Err(ProtoError::WrongRrc);
            }
            Frame::Report { t, msg }
        }
        KIND_HANDOVER => {
            let t = c.f64()?;
            let msg = c.rrc()?;
            if !matches!(msg, RrcMessage::RrcReconfiguration { .. }) {
                return Err(ProtoError::WrongRrc);
            }
            Frame::Handover { t, msg }
        }
        KIND_PREDICT => {
            let t = c.f64()?;
            let has_scg = c.u8()? != 0;
            let nr_band = band_from_wire(c.u8()?)?;
            Frame::Predict { t, has_scg, nr_band }
        }
        KIND_BYE => Frame::Bye,
        KIND_PROGNOSIS => {
            let t = c.f64()?;
            let ho = match c.u8()? {
                0 => None,
                tag => Some(ho_from_wire(tag).ok_or(ProtoError::Malformed)?),
            };
            let ho_score = c.f64()?;
            let confidence = c.f64()?;
            let lead_s = c.f64()?;
            Frame::Prognosis { t, ho, ho_score, confidence, lead_s }
        }
        KIND_ERROR => Frame::Error { code: c.u8()? },
        k => return Err(ProtoError::BadKind(k)),
    };
    if c.pos != body.len() - 1 {
        return Err(ProtoError::Malformed);
    }
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_rrc::EventConfig;

    fn obs(pci: u16, rsrp: f64, group: Option<u32>) -> CellObs {
        CellObs { pci: Pci(pci), rrs: Rrs { rsrp_dbm: rsrp, rsrq_db: -11.25, sinr_db: 7.5 }, group }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { ver: PROTO_VERSION, arch: Arch::Sa, ue: 42 },
            Frame::Config {
                t: 0.0,
                msg: RrcMessage::MeasConfig {
                    configs: vec![
                        EventConfig::typical(MeasEvent::lte(EventKind::A3)),
                        EventConfig::typical(MeasEvent::nr(EventKind::A2)),
                    ],
                },
            },
            Frame::Sample {
                t: 1.25,
                lte: LegSnapshot {
                    serving: Some(obs(10, -95.25, Some(7))),
                    neighbors: vec![obs(11, -99.5, Some(7)), obs(12, -101.75, None)],
                },
                nr: LegSnapshot { serving: None, neighbors: vec![obs(300, -88.0, Some(9))] },
            },
            Frame::Sample { t: 1.3, lte: LegSnapshot::empty(), nr: LegSnapshot::empty() },
            Frame::Report {
                t: 2.0,
                msg: RrcMessage::MeasurementReport {
                    event: MeasEvent::nr(EventKind::A3),
                    serving_pci: Pci(300),
                    serving_rrs: Rrs { rsrp_dbm: -90.0, rsrq_db: -10.0, sinr_db: 5.0 },
                    neighbors: vec![NeighborMeas {
                        pci: Pci(301),
                        rrs: Rrs { rsrp_dbm: -87.0, rsrq_db: -9.0, sinr_db: 6.0 },
                    }],
                },
            },
            Frame::Handover {
                t: 2.5,
                msg: RrcMessage::RrcReconfiguration { action: ReconfigAction::McgHandover { target: Pci(301) } },
            },
            Frame::Predict { t: 2.6, has_scg: true, nr_band: Some(BandClass::Mid) },
            Frame::Predict { t: 2.7, has_scg: false, nr_band: None },
            Frame::Bye,
            Frame::Prognosis { t: 2.6, ho: Some(HoType::Mcgh), ho_score: 0.85, confidence: 0.75, lead_s: 0.6 },
            Frame::Prognosis { t: 2.7, ho: None, ho_score: 1.0, confidence: 0.0, lead_s: 0.0 },
            Frame::Error { code: 1 },
        ]
    }

    #[test]
    fn round_trip_all_frame_kinds() {
        for f in sample_frames() {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f);
            let (back, used) = try_read_frame(&buf).expect("parse").expect("complete");
            assert_eq!(used, buf.len());
            assert_eq!(back, f);
        }
    }

    #[test]
    fn frames_concatenate_and_parse_in_order() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f);
        }
        let mut off = 0;
        let mut back = Vec::new();
        while let Some((f, used)) = try_read_frame(&buf[off..]).expect("parse") {
            back.push(f);
            off += used;
        }
        assert_eq!(off, buf.len());
        assert_eq!(back, frames);
    }

    #[test]
    fn partial_buffers_ask_for_more_at_every_cut() {
        for f in sample_frames() {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f);
            for cut in 0..buf.len() {
                assert_eq!(try_read_frame(&buf[..cut]).expect("no error on short read"), None);
            }
        }
    }

    #[test]
    fn quantization_matches_the_rrc_codec() {
        // values off the centi-dB grid land on it after one round trip, and
        // a second round trip is then the identity — the property the
        // offline-equivalence digest rests on
        let f = Frame::Sample {
            t: 0.1,
            lte: LegSnapshot {
                serving: Some(CellObs {
                    pci: Pci(1),
                    rrs: Rrs { rsrp_dbm: -100.004, rsrq_db: -10.113, sinr_db: 3.007 },
                    group: Some(1),
                }),
                neighbors: vec![],
            },
            nr: LegSnapshot::empty(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f);
        let (once, _) = try_read_frame(&buf).unwrap().unwrap();
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, &once);
        assert_eq!(buf, buf2, "canonicalized frames must be byte-stable");
        match &once {
            Frame::Sample { lte, .. } => {
                assert_eq!(lte.serving.unwrap().rrs.rsrp_dbm, -100.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn zero_and_oversize_lengths_rejected() {
        assert_eq!(try_read_frame(&[0, 0, 0, 0, 0, 0]), Err(ProtoError::BadLength(0)));
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        assert_eq!(
            try_read_frame(&[huge[0], huge[1], huge[2], huge[3]]),
            Err(ProtoError::BadLength(MAX_FRAME as u32 + 1))
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(try_read_frame(&[0, 0, 0, 1, 0x42]), Err(ProtoError::BadKind(0x42)));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Bye);
        // grow the declared length and append a stray byte
        buf[3] += 1;
        buf.push(0xAA);
        assert_eq!(try_read_frame(&buf), Err(ProtoError::Malformed));
    }

    #[test]
    fn wrong_embedded_rrc_variant_rejected() {
        // a CONFIG frame whose payload is a MeasurementReport
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Report {
                t: 1.0,
                msg: RrcMessage::MeasurementReport {
                    event: MeasEvent::lte(EventKind::A1),
                    serving_pci: Pci(1),
                    serving_rrs: Rrs { rsrp_dbm: -100.0, rsrq_db: -10.0, sinr_db: 0.0 },
                    neighbors: vec![],
                },
            },
        );
        buf[4] = KIND_CONFIG;
        assert_eq!(try_read_frame(&buf), Err(ProtoError::WrongRrc));
    }

    #[test]
    fn group_count_mismatch_rejected() {
        let f = Frame::Sample {
            t: 0.0,
            lte: LegSnapshot { serving: Some(obs(1, -90.0, Some(3))), neighbors: vec![] },
            nr: LegSnapshot::empty(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f);
        // the LTE leg's group count byte sits right after the embedded rrc
        // message; find it by re-encoding the leg and corrupting the count
        // (leg layout: flags, n:u16, rrc[n], g, ...). offset of g:
        let rrc_len = u16::from_be_bytes([buf[4 + 1 + 8 + 1], buf[4 + 1 + 8 + 2]]) as usize;
        let g_at = 4 + 1 + 8 + 1 + 2 + rrc_len;
        buf[g_at] = buf[g_at].wrapping_add(1);
        assert!(try_read_frame(&buf).is_err());
    }

    #[test]
    fn ho_wire_tags_are_a_bijection() {
        for ho in HoType::ALL {
            assert_eq!(ho_from_wire(ho_wire_tag(ho)), Some(ho));
        }
        assert_eq!(ho_from_wire(0), None);
        assert_eq!(ho_from_wire(8), None);
    }
}
