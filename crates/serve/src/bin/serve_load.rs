//! `serve_load` — trace-replay load generator for the `serve` binary.
//!
//! Replays the pinned fleet workload against a running server over TCP or
//! UDS at a configurable session fan-out: each session opens one
//! connection, streams the canonical frame sequence of one fleet-recorded
//! trace, and runs the PREDICT/PROGNOSIS exchange closed-loop, timing each
//! round trip. Every wire reply is compared — field by field — against an
//! offline [`fiveg_serve::replay_offline`] run of the *same* frames, and
//! the FNV-1a-64 prediction-equivalence digest over both reply streams is
//! reported, so "the server answers exactly what offline Prognos would"
//! is a single gated string.
//!
//! ```text
//! serve_load --pinned --uds /tmp/fiveg.sock --sessions 8 \
//!     --out BENCH_serve.json --baseline BENCH_serve.json --tol 0.15
//! ```
//!
//! The report (schema `fiveg-serve/v1`) separates machine-independent
//! `gated` fields (counts, mismatches, the digest) from machine-dependent
//! `advisory` ones (latency percentiles, throughput). Exit codes: 0 ok,
//! 1 usage/connection/gate failure, 2 wire-vs-offline prediction
//! mismatch, 3 baseline schema mismatch.

use fiveg_bench::perfgate::{self, Better, Gate};
use fiveg_bench::JsonBuf;
use fiveg_ran::{Arch, Carrier};
use fiveg_serve::digest::{combine_sessions, digest_replies, hex16};
use fiveg_serve::proto::{self, Frame};
use fiveg_serve::replay::{replay_offline, trace_frames};
use fiveg_serve::session::SessionCounts;
use fiveg_sim::{run_fleet_exec, FleetExec, FleetSpec, ScenarioBuilder, Trace};
use fiveg_telemetry::Histogram;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Instant;

const SCHEMA: &str = "fiveg-serve/v1";

/// The pinned workload: a small SA city fleet, staggered starts, traces
/// kept so each session has a full per-tick frame sequence to replay.
/// Changing anything here changes every gated count and the digest —
/// regenerate `BENCH_serve.json` if you do.
const PINNED_SEED: u64 = 201;
const PINNED_UES: u32 = 6;

fn pinned_traces() -> Vec<Trace> {
    let base =
        ScenarioBuilder::city_loop(Carrier::OpY, PINNED_SEED).arch(Arch::Sa).duration_s(30.0).sample_hz(10.0).build();
    let spec = FleetSpec::new(base, PINNED_UES).stagger_s(7.0).speed_jitter(0.1).keep_traces(true);
    run_fleet_exec(&spec, FleetExec::threads(1)).traces
}

#[derive(Clone)]
enum Endpoint {
    Tcp(String),
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Endpoint {
    fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
            #[cfg(unix)]
            Endpoint::Uds(path) => UnixStream::connect(path).map(Stream::Uds),
        }
    }

    fn transport(&self) -> &'static str {
        match self {
            Endpoint::Tcp(_) => "tcp",
            #[cfg(unix)]
            Endpoint::Uds(_) => "uds",
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// Blocks until one whole frame arrives (the closed-loop read half).
fn read_frame(conn: &mut Stream, inbuf: &mut Vec<u8>) -> io::Result<Frame> {
    loop {
        match proto::try_read_frame(inbuf) {
            Ok(Some((f, used))) => {
                inbuf.drain(..used);
                return Ok(f);
            }
            Ok(None) => {}
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
        let mut tmp = [0u8; 4096];
        let n = conn.read(&mut tmp)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-exchange"));
        }
        inbuf.extend_from_slice(&tmp[..n]);
    }
}

struct SessionOutcome {
    ue: u32,
    frames_sent: u64,
    replies: Vec<Frame>,
    offline_replies: Vec<Frame>,
    offline_counts: SessionCounts,
    mismatches: u64,
    rtt_ms: Histogram,
    slo_miss: u64,
}

/// One client session: replay `frames` closed-loop, compare every reply
/// against the offline ground truth, time every round trip. A nonzero
/// `rate` paces the loop to at most that many predictions per second.
fn run_session(ep: &Endpoint, ue: u32, frames: Vec<Frame>, slo_ms: f64, rate: f64) -> io::Result<SessionOutcome> {
    let offline = replay_offline(&frames).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut conn = ep.connect()?;
    let mut out = Vec::new();
    let mut inbuf = Vec::new();
    let mut o = SessionOutcome {
        ue,
        frames_sent: frames.len() as u64,
        replies: Vec::with_capacity(offline.replies.len()),
        offline_replies: offline.replies,
        offline_counts: offline.counts,
        mismatches: 0,
        rtt_ms: Histogram::new(),
        slo_miss: 0,
    };
    let start = Instant::now();
    for f in &frames {
        proto::write_frame(&mut out, f);
        if matches!(f, Frame::Predict { .. }) {
            if rate > 0.0 {
                // open-loop pacing: request k is due at k/rate seconds
                let due = o.replies.len() as f64 / rate;
                let ahead = due - start.elapsed().as_secs_f64();
                if ahead > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(ahead));
                }
            }
            conn.write_all(&out)?;
            conn.flush()?;
            out.clear();
            let t0 = Instant::now();
            let reply = read_frame(&mut conn, &mut inbuf)?;
            let rtt = t0.elapsed().as_secs_f64() * 1e3;
            o.rtt_ms.observe(rtt);
            if rtt > slo_ms {
                o.slo_miss += 1;
            }
            let k = o.replies.len();
            if o.offline_replies.get(k) != Some(&reply) {
                o.mismatches += 1;
            }
            o.replies.push(reply);
        }
    }
    // trailing frames (BYE); the server closes the connection after it
    conn.write_all(&out)?;
    conn.flush()?;
    let mut tmp = [0u8; 64];
    if conn.read(&mut tmp)? != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected frame after BYE"));
    }
    Ok(o)
}

struct Args {
    pinned: bool,
    endpoint: Option<Endpoint>,
    sessions: usize,
    rate: f64,
    slo_ms: f64,
    out: String,
    baseline: Option<String>,
    tol: f64,
}

fn usage() -> ExitCode {
    println!(
        "usage: serve_load --pinned (--tcp ADDR | --uds PATH) [--sessions N] \
         [--rate F] [--slo-ms F] [--out PATH] [--baseline PATH] [--tol F]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        pinned: false,
        endpoint: None,
        sessions: 8,
        rate: 0.0,
        slo_ms: 50.0,
        out: "BENCH_serve.json".into(),
        baseline: None,
        tol: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--pinned" => args.pinned = true,
            "--tcp" => args.endpoint = Some(Endpoint::Tcp(val("--tcp")?)),
            #[cfg(unix)]
            "--uds" => args.endpoint = Some(Endpoint::Uds(val("--uds")?.into())),
            "--sessions" => args.sessions = val("--sessions")?.parse().map_err(|_| "bad --sessions")?,
            "--rate" => args.rate = val("--rate")?.parse().map_err(|_| "bad --rate")?,
            "--slo-ms" => args.slo_ms = val("--slo-ms")?.parse().map_err(|_| "bad --slo-ms")?,
            "--out" => args.out = val("--out")?,
            "--baseline" => args.baseline = Some(val("--baseline")?),
            "--tol" => args.tol = val("--tol")?.parse().map_err(|_| "bad --tol")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn write_report(args: &Args, transport: &str, outcomes: &[SessionOutcome], totals: &Totals, elapsed_s: f64) -> String {
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val(SCHEMA);
    j.key("mode");
    j.str_val("pinned");
    j.key("transport");
    j.str_val(transport);
    j.key("sessions");
    j.uint(args.sessions as u64);
    j.key("fleet_ues");
    j.uint(u64::from(PINNED_UES));
    // every field in `gated` must stay machine-independent and scalar:
    // perfgate's extractors scope an anchor to the first closing brace
    j.key("gated");
    j.open('{');
    j.key("sessions_completed");
    j.uint(outcomes.len() as u64);
    j.key("frames_sent");
    j.uint(totals.frames_sent);
    j.key("predictions");
    j.uint(totals.predictions);
    j.key("ho_predictions");
    j.uint(totals.positives);
    j.key("mismatches");
    j.uint(totals.mismatches);
    j.key("equiv_digest");
    j.str_val(&totals.digest);
    j.close('}');
    j.key("per_session");
    j.open('[');
    for o in outcomes {
        j.open('{');
        j.key("ue");
        j.uint(u64::from(o.ue));
        j.key("predictions");
        j.uint(o.replies.len() as u64);
        j.key("positives");
        j.uint(o.offline_counts.positives);
        j.key("mismatches");
        j.uint(o.mismatches);
        j.key("digest");
        j.str_val(&hex16(digest_replies(&o.replies)));
        j.close('}');
    }
    j.close(']');
    j.key("advisory");
    j.open('{');
    j.key("elapsed_s");
    j.num(elapsed_s);
    j.key("predictions_per_sec");
    j.num(totals.predictions as f64 / elapsed_s.max(1e-9));
    j.key("rtt_ms_p50");
    j.num(totals.rtt_ms.percentile(0.50));
    j.key("rtt_ms_p99");
    j.num(totals.rtt_ms.percentile(0.99));
    j.key("rtt_ms_p999");
    j.num(totals.rtt_ms.percentile(0.999));
    j.key("slo_ms");
    j.num(args.slo_ms);
    j.key("slo_miss");
    j.uint(totals.slo_miss);
    j.key("slo_miss_rate");
    j.num(totals.slo_miss as f64 / (totals.predictions as f64).max(1.0));
    j.close('}');
    j.close('}');
    j.finish_line()
}

struct Totals {
    frames_sent: u64,
    predictions: u64,
    positives: u64,
    mismatches: u64,
    slo_miss: u64,
    rtt_ms: Histogram,
    digest: String,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return usage();
        }
    };
    if !args.pinned {
        eprintln!("serve_load: only the pinned workload is supported; pass --pinned");
        return usage();
    }
    let Some(ep) = args.endpoint.clone() else {
        eprintln!("serve_load: no endpoint; pass --tcp or --uds");
        return usage();
    };

    let traces = pinned_traces();
    println!(
        "serve_load: pinned fleet of {} traces (seed {}), {} sessions over {}",
        traces.len(),
        PINNED_SEED,
        args.sessions,
        ep.transport()
    );

    // one thread per session: connect, replay closed-loop, compare
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for i in 0..args.sessions {
        let ue = i as u32;
        let frames = trace_frames(&traces[i % traces.len()], ue);
        let ep = ep.clone();
        let (slo_ms, rate) = (args.slo_ms, args.rate);
        handles.push(std::thread::spawn(move || run_session(&ep, ue, frames, slo_ms, rate)));
    }
    let mut outcomes = Vec::new();
    for h in handles {
        match h.join().expect("session thread panicked") {
            Ok(o) => outcomes.push(o),
            Err(e) => {
                eprintln!("serve_load: session failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut totals = Totals {
        frames_sent: 0,
        predictions: 0,
        positives: 0,
        mismatches: 0,
        slo_miss: 0,
        rtt_ms: Histogram::new(),
        digest: String::new(),
    };
    let mut wire = Vec::new();
    let mut offline = Vec::new();
    for o in &outcomes {
        totals.frames_sent += o.frames_sent;
        totals.predictions += o.replies.len() as u64;
        totals.positives += o.offline_counts.positives;
        totals.mismatches += o.mismatches;
        totals.slo_miss += o.slo_miss;
        totals.rtt_ms.merge(&o.rtt_ms);
        wire.push((o.ue, digest_replies(&o.replies)));
        offline.push((o.ue, digest_replies(&o.offline_replies)));
    }
    let wire_digest = hex16(combine_sessions(&wire));
    let offline_digest = hex16(combine_sessions(&offline));
    totals.digest = wire_digest.clone();

    println!(
        "serve_load: wire == offline for {}/{} predictions, digest {}",
        totals.predictions - totals.mismatches,
        totals.predictions,
        wire_digest
    );
    println!(
        "serve_load: p50 {:.3} ms p99 {:.3} ms, {}/{} slo misses (slo {} ms), {:.0} predictions/s",
        totals.rtt_ms.percentile(0.50),
        totals.rtt_ms.percentile(0.99),
        totals.slo_miss,
        totals.predictions,
        args.slo_ms,
        totals.predictions as f64 / elapsed_s.max(1e-9)
    );

    let report = write_report(&args, ep.transport(), &outcomes, &totals, elapsed_s);
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("serve_load: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    if totals.mismatches > 0 || wire_digest != offline_digest {
        eprintln!(
            "serve_load: wire predictions diverge from offline Prognos \
             ({} mismatches, wire {} vs offline {})",
            totals.mismatches, wire_digest, offline_digest
        );
        return ExitCode::from(2);
    }

    if let Some(path) = &args.baseline {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve_load: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // refuse to gate across schema generations (see fleet_bench):
        // rows from an older schema mean different things
        match perfgate::schema_of(&committed) {
            Some(s) if s == SCHEMA => {}
            got => {
                eprintln!(
                    "serve_load: baseline {path} has schema {} but this binary writes {SCHEMA} — \
                     regenerate the baseline instead of gating across schema versions",
                    got.map_or_else(|| "(none)".into(), |s| format!("'{s}'"))
                );
                return ExitCode::from(3);
            }
        }
        let gated = |metric: &str| perfgate::metric_after(&committed, r#""gated":"#, metric);
        let (Some(b_sessions), Some(b_frames), Some(b_preds), Some(b_pos), Some(b_mis)) = (
            gated("sessions_completed"),
            gated("frames_sent"),
            gated("predictions"),
            gated("ho_predictions"),
            gated("mismatches"),
        ) else {
            eprintln!("serve_load: baseline {path} is missing gated metrics — reformatted or wrong file?");
            return ExitCode::FAILURE;
        };
        let Some(b_digest) = perfgate::str_after(&committed, r#""gated":"#, "equiv_digest") else {
            eprintln!("serve_load: baseline {path} is missing the equivalence digest");
            return ExitCode::FAILURE;
        };
        println!("  perf gate vs {} (tol {:.0}%):", path, args.tol * 100.0);
        if let Some(b_pps) = perfgate::metric_anywhere(&committed, "predictions_per_sec") {
            perfgate::advise("predictions_per_sec", b_pps, totals.predictions as f64 / elapsed_s.max(1e-9));
        }
        // every count is exact for the pinned workload, so all gates are
        // bands — drift either way means the workload silently changed.
        // The digest is a string gate: exact match or fail, no tolerance.
        let gates = [
            Gate {
                what: "serve sessions_completed".into(),
                baseline: b_sessions,
                current: outcomes.len() as f64,
                better: Better::Band,
            },
            Gate {
                what: "serve frames_sent".into(),
                baseline: b_frames,
                current: totals.frames_sent as f64,
                better: Better::Band,
            },
            Gate {
                what: "serve predictions".into(),
                baseline: b_preds,
                current: totals.predictions as f64,
                better: Better::Band,
            },
            Gate {
                what: "serve ho_predictions".into(),
                baseline: b_pos,
                current: totals.positives as f64,
                better: Better::Band,
            },
        ];
        let digest_ok = b_digest == wire_digest;
        println!(
            "  {:<34} baseline {:>16}  current {:>16}  {}",
            "serve equiv_digest",
            b_digest,
            wire_digest,
            if digest_ok { "ok" } else { "FAIL (prediction drift)" }
        );
        // a mismatch count above the baseline's (0) can only mean the wire
        // diverged, which already exited above — but gate it anyway so a
        // nonzero committed baseline is caught the day someone commits one
        let mis_ok = totals.mismatches as f64 <= b_mis;
        if !mis_ok {
            println!("  {:<34} baseline {:>16}  current {:>16}  FAIL", "serve mismatches", b_mis, totals.mismatches);
        }
        if !perfgate::evaluate(&gates, args.tol) || !digest_ok || !mis_ok {
            eprintln!("serve_load: gated metrics regressed beyond tolerance");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
