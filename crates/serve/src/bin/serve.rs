//! `serve` — the online Prognos prediction server.
//!
//! Listens on TCP and/or a Unix domain socket, runs one Prognos session
//! per connection, and answers PREDICT frames with PROGNOSIS replies under
//! a configurable latency SLO. See `fiveg-serve`'s crate docs for the wire
//! protocol and `serve_load` for the matching load generator.
//!
//! ```text
//! serve --uds /tmp/fiveg.sock --workers 4
//! serve --tcp 127.0.0.1:9085 --slo-ms 20 --duration-s 60
//! ```
//!
//! The server runs until killed, or for `--duration-s` seconds when given;
//! on a timed exit it prints a final stats summary and exits 0.

use fiveg_serve::server::{start, ServeConfig};
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--tcp ADDR] [--uds PATH] [--workers N] [--max-sessions N] \
         [--slo-ms F] [--idle-timeout-s F] [--duration-s F]"
    );
    exit(2);
}

fn main() {
    let mut cfg = ServeConfig::default();
    let mut duration_s = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--tcp" => cfg.tcp = Some(val()),
            "--uds" => cfg.uds = Some(PathBuf::from(val())),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--max-sessions" => cfg.max_sessions = val().parse().unwrap_or_else(|_| usage()),
            "--slo-ms" => cfg.slo_ms = val().parse().unwrap_or_else(|_| usage()),
            "--idle-timeout-s" => cfg.idle_timeout_s = val().parse().unwrap_or_else(|_| usage()),
            "--duration-s" => duration_s = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if cfg.tcp.is_none() && cfg.uds.is_none() {
        eprintln!("serve: no endpoint; pass --tcp and/or --uds");
        usage();
    }

    let handle = match start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            exit(1);
        }
    };
    if let Some(addr) = handle.tcp_addr {
        println!("serve: tcp {addr}");
    }
    if let Some(path) = &handle.uds_path {
        println!("serve: uds {}", path.display());
    }
    println!("serve: {} workers, max {} sessions, slo {} ms", cfg.workers, cfg.max_sessions, cfg.slo_ms);
    // make the endpoint lines visible to a parent piping our stdout
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let t0 = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if duration_s > 0.0 && t0.elapsed().as_secs_f64() >= duration_s {
            break;
        }
    }
    let st = handle.shutdown();
    println!(
        "serve: done — accepted {}, completed {}, eof {}, rejected {}, malformed {}, idle {}, io {}",
        st.accepted, st.completed, st.closed_eof, st.rejected, st.dropped_malformed, st.dropped_idle, st.dropped_io
    );
    println!(
        "serve: {} predictions, {} slo misses, p50 {:.3} ms p99 {:.3} ms",
        st.predictions,
        st.slo_miss,
        st.latency_ms.percentile(0.50),
        st.latency_ms.percentile(0.99)
    );
}
