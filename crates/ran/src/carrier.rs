//! The three studied carriers and their deployment profiles.
//!
//! The paper anonymizes the carriers as OpX, OpY and OpZ. Their observable
//! characteristics (Table 1 and §3) drive the profiles here:
//!
//! * **OpX** — NSA only; low-band (n5) + mmWave (n260/n261) + some C-band;
//!   4 NR bands, 5 LTE bands. All application case studies use OpX.
//! * **OpY** — NSA *and* SA; low-band n71 + mid-band n41; 2 NR bands,
//!   9 LTE bands.
//! * **OpZ** — NSA only; low-band + mmWave; 4 NR bands, 6 LTE bands.

use fiveg_radio::band::catalog as bands;
use fiveg_radio::Band;
use serde::{Deserialize, Serialize};

/// A studied carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Carrier {
    /// NSA; low-band + mmWave. The carrier used for app QoE and energy work.
    OpX,
    /// NSA + SA; low-band + mid-band.
    OpY,
    /// NSA; low-band + mmWave.
    OpZ,
}

impl Carrier {
    /// All carriers in paper order.
    pub const ALL: [Carrier; 3] = [Carrier::OpX, Carrier::OpY, Carrier::OpZ];

    /// Paper-style name.
    pub fn name(&self) -> &'static str {
        match self {
            Carrier::OpX => "OpX",
            Carrier::OpY => "OpY",
            Carrier::OpZ => "OpZ",
        }
    }

    /// The carrier's deployment profile.
    pub fn profile(&self) -> CarrierProfile {
        match self {
            Carrier::OpX => CarrierProfile {
                carrier: *self,
                lte_bands: vec![bands::B2, bands::B5, bands::B12, bands::B30, bands::B66],
                nr_low: Some(bands::N5),
                nr_mid: Some(bands::N77),
                nr_mmwave: vec![bands::N260, bands::N261],
                anchor_band: bands::B2,
                supports_sa: false,
                colocation_prob: 0.36,
                dual_mode_fraction: 0.45,
            },
            Carrier::OpY => CarrierProfile {
                carrier: *self,
                lte_bands: vec![
                    bands::B2,
                    bands::B4,
                    bands::B5,
                    bands::B12,
                    bands::B25,
                    bands::B26,
                    bands::B41,
                    bands::B66,
                    bands::B71,
                ],
                nr_low: Some(bands::N71),
                nr_mid: Some(bands::N41),
                nr_mmwave: vec![],
                anchor_band: bands::B2,
                supports_sa: true,
                colocation_prob: 0.20,
                dual_mode_fraction: 0.35,
            },
            Carrier::OpZ => CarrierProfile {
                carrier: *self,
                lte_bands: vec![bands::B2, bands::B5, bands::B13, bands::B48, bands::B66, bands::B46],
                nr_low: Some(bands::N71),
                nr_mid: Some(bands::N2),
                nr_mmwave: vec![bands::N260, bands::N261],
                anchor_band: bands::B66,
                supports_sa: false,
                colocation_prob: 0.05,
                dual_mode_fraction: 0.30,
            },
        }
    }
}

impl std::fmt::Display for Carrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The terrain a deployment is generated for; controls density and which
/// bands are present (mmWave exists only in cities, §3: "The city data mostly
/// comprises of dense deployments and mmWave 5G coverage, while the
/// inter-state data loosely represents suburban deployments and Low-Band 5G").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Dense downtown: mmWave + mid-band + dense LTE.
    UrbanDense,
    /// City fringe: mid/low NR, moderate density.
    Urban,
    /// Interstate freeway: sparse low-band NR + LTE.
    Freeway,
}

/// Static description of how a carrier deploys its network.
#[derive(Debug, Clone)]
pub struct CarrierProfile {
    /// The carrier this profile describes.
    pub carrier: Carrier,
    /// LTE band portfolio.
    pub lte_bands: Vec<Band>,
    /// Low-band NR carrier, if deployed.
    pub nr_low: Option<Band>,
    /// Mid-band NR carrier, if deployed.
    pub nr_mid: Option<Band>,
    /// mmWave NR carriers (urban cores only).
    pub nr_mmwave: Vec<Band>,
    /// The LTE band used as NSA anchor (NSA-4C). Mid-band in practice —
    /// this is the root cause of §6.1's effective-coverage reduction.
    pub anchor_band: Band,
    /// Whether the carrier runs SA 5G (only OpY during the study).
    pub supports_sa: bool,
    /// Probability that a gNB site is co-located with an eNB tower
    /// (5%–36% across carriers per §6.3).
    pub colocation_prob: f64,
    /// Fraction of the territory configured with MCG split bearer ("dual
    /// mode") rather than SCG bearer ("5G-only"), §4.2.
    pub dual_mode_fraction: f64,
}

impl CarrierProfile {
    /// Number of distinct NR bands (Table 1's "# of 5G-NR radio frequency
    /// bands" row).
    pub fn nr_band_count(&self) -> usize {
        self.nr_low.iter().count() + self.nr_mid.iter().count() + self.nr_mmwave.len()
    }

    /// Number of distinct LTE bands.
    pub fn lte_band_count(&self) -> usize {
        self.lte_bands.len()
    }

    /// NR bands deployed in `env`.
    pub fn nr_bands_in(&self, env: Environment) -> Vec<Band> {
        let mut v = Vec::new();
        if let Some(b) = self.nr_low {
            v.push(b);
        }
        match env {
            Environment::UrbanDense => {
                if let Some(b) = self.nr_mid {
                    v.push(b);
                }
                v.extend(self.nr_mmwave.iter().copied());
            }
            Environment::Urban => {
                if let Some(b) = self.nr_mid {
                    v.push(b);
                }
            }
            Environment::Freeway => {
                // low-band only, plus OpY's expansive mid-band
                if self.carrier == Carrier::OpY {
                    if let Some(b) = self.nr_mid {
                        v.push(b);
                    }
                }
            }
        }
        v
    }

    /// LTE bands deployed in `env` (all of them in cities, a low/mid subset
    /// on freeways).
    pub fn lte_bands_in(&self, env: Environment) -> Vec<Band> {
        match env {
            Environment::Freeway => self.lte_bands.iter().copied().filter(|b| b.freq_mhz < 2200.0).collect(),
            _ => self.lte_bands.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_counts_match_table1() {
        assert_eq!(Carrier::OpX.profile().nr_band_count(), 4);
        assert_eq!(Carrier::OpX.profile().lte_band_count(), 5);
        assert_eq!(Carrier::OpY.profile().nr_band_count(), 2);
        assert_eq!(Carrier::OpY.profile().lte_band_count(), 9);
        assert_eq!(Carrier::OpZ.profile().nr_band_count(), 4);
        assert_eq!(Carrier::OpZ.profile().lte_band_count(), 6);
    }

    #[test]
    fn only_opy_supports_sa() {
        assert!(!Carrier::OpX.profile().supports_sa);
        assert!(Carrier::OpY.profile().supports_sa);
        assert!(!Carrier::OpZ.profile().supports_sa);
    }

    #[test]
    fn mmwave_absent_on_freeways() {
        for c in Carrier::ALL {
            let p = c.profile();
            let bands = p.nr_bands_in(Environment::Freeway);
            assert!(
                bands.iter().all(|b| b.class() != fiveg_radio::BandClass::MmWave),
                "{c}: mmWave should not appear on freeways"
            );
        }
    }

    #[test]
    fn mmwave_in_urban_dense_for_opx_opz() {
        let has_mm = |c: Carrier| {
            c.profile().nr_bands_in(Environment::UrbanDense).iter().any(|b| b.class() == fiveg_radio::BandClass::MmWave)
        };
        assert!(has_mm(Carrier::OpX));
        assert!(!has_mm(Carrier::OpY));
        assert!(has_mm(Carrier::OpZ));
    }

    #[test]
    fn anchor_is_mid_band() {
        // §6.1: "its coupled control plane (NSA-4C) still uses the mid-band"
        for c in Carrier::ALL {
            assert_eq!(c.profile().anchor_band.class(), fiveg_radio::BandClass::Mid, "{c}");
        }
    }

    #[test]
    fn colocation_prob_in_paper_range() {
        for c in Carrier::ALL {
            let p = c.profile().colocation_prob;
            assert!((0.05..=0.36).contains(&p), "{c}: {p}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(Carrier::OpX.to_string(), "OpX");
        assert_eq!(Carrier::ALL.len(), 3);
    }
}
