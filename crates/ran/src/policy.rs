//! Carrier handover decision logic.
//!
//! "The policy-based HO logic is unique for each HO type and can be
//! formulated as a sequence of measurement reports preceding a HO" (§7.1).
//! The rules below produce exactly the MR→HO sequences annotated in Fig. 16:
//!
//! * `[NR-B1] → SCGA` — NR coverage appears while 4G-only;
//! * `[NR-A2] → SCGR` — serving NR fades with no replacement;
//! * `[NR-A2, NR-B1] → SCGC` — serving NR fades, another gNB is available;
//! * `[NR-A3] → SCGM` — a better NR cell under the *same* gNB;
//! * `[A3] → MNBH or LTEH` — LTE anchor change (MNBH when the target eNB
//!   still reaches the current gNB over X2, otherwise the SCG must go);
//! * `[A5] → LTEH` — inter-frequency LTE HO;
//! * `[NR-A3] → MCGH` — SA 5G.
//!
//! Crucially for the study, "NSA 5G does not have an option to perform a
//! direct HO between two gNBs" (§2): the inter-gNB path is always the
//! release+add SCGC, and each leg optimizes locally (§6.2's −14%).

use crate::carrier::Carrier;
use crate::cell::CellId;
use crate::deploy::Deployment;
use crate::ho::{Arch, HoType};
use crate::measure::TriggeredReport;
use crate::snapshot::PciTable;
use fiveg_rrc::{EventConfig, EventKind, MeasEvent, ReconfigAction};
use fiveg_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// A handover decision made by the serving cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoDecision {
    /// The action to signal to the UE.
    pub action: ReconfigAction,
    /// The MR event sequence of the current phase that led here (what
    /// Prognos's decision learner will observe as the pattern).
    pub phase: Vec<MeasEvent>,
}

impl HoDecision {
    /// The HO type this decision executes.
    pub fn ho_type(&self) -> HoType {
        HoType::from_action(&self.action)
    }
}

/// Context the policy needs to ground PCIs and topology at decision time.
pub struct PolicyContext<'a> {
    /// The deployment (for gNB topology queries).
    pub deployment: &'a Deployment,
    /// Serving LTE cell, if any.
    pub serving_lte: Option<CellId>,
    /// Serving NR cell, if any (the SCG primary / SA serving).
    pub serving_nr: Option<CellId>,
    /// PCI → cell resolution for currently measurable cells.
    pub candidates: &'a PciTable,
    /// Current time (s).
    pub t: f64,
}

/// The serving network's policy engine for one UE.
///
/// Stateful: the SCGC rule needs to remember a recent NR-A2 ("serving NR is
/// fading") when the NR-B1 ("another gNB crossed the add threshold")
/// arrives. The pending A2 decays into an SCG Release after
/// `scgc_window_s` — exactly the release/add asymmetry the paper blames for
/// low-band NSA's reduced effective coverage.
#[derive(Debug, Clone)]
pub struct HoPolicy {
    carrier: Carrier,
    arch: Arch,
    /// Pending NR-A2: (report time, phase so far).
    pending_nr_a2: Option<(f64, Vec<MeasEvent>)>,
    /// How long after NR-A2 a B1 may still upgrade the release to a change.
    scgc_window_s: f64,
    /// Max distance (m) between the target eNB tower and the serving gNB's
    /// associated eNB tower for an anchor change to keep the SCG (MNBH).
    mnbh_reach_m: f64,
    /// Events accumulated in the current phase (since the last HO).
    phase: Vec<MeasEvent>,
    telemetry: Telemetry,
}

impl HoPolicy {
    /// Creates the policy for a carrier and architecture.
    pub fn new(carrier: Carrier, arch: Arch) -> Self {
        Self {
            carrier,
            arch,
            pending_nr_a2: None,
            scgc_window_s: 2.0,
            mnbh_reach_m: 400.0,
            phase: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry recorder (disabled by default): every decision
    /// is counted, globally and per HO type.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.telemetry = tele;
    }

    /// LTE-leg measurement configs this carrier deploys.
    ///
    /// Thresholds vary slightly per carrier — the "disparities among the HO
    /// mechanisms adopted by the major 5G carriers" the abstract highlights.
    pub fn lte_configs(&self) -> Vec<EventConfig> {
        let (a3_off, a5_t1, ttt) = match self.carrier {
            Carrier::OpX => (3.0, -114.0, 480),
            Carrier::OpY => (2.5, -112.0, 400),
            Carrier::OpZ => (3.5, -116.0, 480),
        };
        let mut a3 = EventConfig::typical(MeasEvent::lte(EventKind::A3));
        a3.offset_db = a3_off;
        a3.hysteresis_db = 1.8;
        a3.ttt_ms = ttt;
        let mut a2 = EventConfig::typical(MeasEvent::lte(EventKind::A2));
        a2.ttt_ms = ttt;
        let mut a5 = EventConfig::typical(MeasEvent::lte(EventKind::A5));
        a5.threshold_dbm = a5_t1;
        a5.ttt_ms = ttt;
        vec![a2, a3, a5]
    }

    /// NR-leg measurement configs. `has_scg` selects between the
    /// coverage-discovery config (B1 only) and the connected-mode config.
    ///
    /// The SCG-release A2 event compares **SINR**, not RSRP: low-band NR
    /// cells keep usable RSRP for kilometers, and what actually makes the
    /// SCG useless near a gNB boundary is interference. Quality-based SCG
    /// management is what commercial NSA deployments configure.
    pub fn nr_configs(&self, has_scg: bool) -> Vec<EventConfig> {
        let (a2_sinr_thr, a3_off) = match self.carrier {
            Carrier::OpX => (2.0, 3.0),
            Carrier::OpY => (3.0, 2.5),
            Carrier::OpZ => (1.0, 3.0),
        };
        // B1 (the add/change trigger) is also quality-based, with a margin
        // above the release threshold — otherwise the network would re-add
        // the same interference-limited cell it just released.
        let mut b1 = EventConfig::typical(MeasEvent::nr(EventKind::B1));
        b1.quantity = fiveg_rrc::MeasQuantity::Sinr;
        b1.threshold_dbm = a2_sinr_thr + 4.0;
        if !has_scg {
            return vec![b1];
        }
        let mut a2 = EventConfig::typical(MeasEvent::nr(EventKind::A2));
        a2.quantity = fiveg_rrc::MeasQuantity::Sinr;
        a2.threshold_dbm = a2_sinr_thr;
        a2.hysteresis_db = 2.0;
        a2.ttt_ms = 880;
        // The RSRP-based A2 the paper's carriers actually run: on mmWave it
        // fires while the link is still fast (RSRP −88 ≈ hundreds of Mbps at
        // 400 MHz), producing the §6.2 throughput cliffs at SCGR/SCGC. On
        // sub-6 the SINR event above almost always fires first.
        let mut a2_rsrp = EventConfig::typical(MeasEvent::nr(EventKind::A2));
        a2_rsrp.threshold_dbm = match self.carrier {
            Carrier::OpX => -88.0,
            Carrier::OpY => -90.0,
            Carrier::OpZ => -86.0,
        };
        a2_rsrp.hysteresis_db = 2.0;
        a2_rsrp.ttt_ms = 320;
        let mut a3 = EventConfig::typical(MeasEvent::nr(EventKind::A3));
        a3.offset_db = a3_off;
        a3.hysteresis_db = 2.0;
        a3.ttt_ms = 480;
        vec![a2, a2_rsrp, a3, b1]
    }

    /// SA measurement configs (NR A3/A5 driving MCGH).
    ///
    /// SA is tuned conservatively (bigger hysteresis/TTT): "SA realizes the
    /// performance benefits promised by 5G and reduces HO overheads" — an HO
    /// only every 0.9 km in the paper's freeway data.
    pub fn sa_configs(&self) -> Vec<EventConfig> {
        let mut a3 = EventConfig::typical(MeasEvent::nr(EventKind::A3));
        a3.offset_db = 4.0;
        a3.hysteresis_db = 3.0;
        a3.ttt_ms = 720;
        let mut a2 = EventConfig::typical(MeasEvent::nr(EventKind::A2));
        a2.threshold_dbm = -116.0;
        vec![a2, a3]
    }

    /// True when the network currently wants NR B1 reports: during SCG
    /// discovery (no SCG) or inside an open SCG-change window (a recent
    /// NR-A2). Outside these, B1 reporting is not configured.
    pub fn wants_nr_b1(&self, has_scg: bool, t: f64) -> bool {
        if !has_scg {
            return true;
        }
        self.pending_nr_a2.as_ref().map(|(since, _)| t - since <= self.scgc_window_s).unwrap_or(false)
    }

    /// The current phase's accumulated events.
    pub fn phase(&self) -> &[MeasEvent] {
        &self.phase
    }

    /// True when no timed policy state is armed: no pending NR-A2 whose SCG
    /// change window could expire into an [`ReconfigAction::ScgRelease`] on a
    /// future clock tick. A quiescent policy's [`HoPolicy::tick`] is a no-op
    /// at any time, so schedulers may skip ticks without losing a decision.
    pub fn is_quiescent(&self) -> bool {
        self.pending_nr_a2.is_none()
    }

    /// Resets the phase after a HO command has been issued.
    pub fn end_phase(&mut self) {
        self.phase.clear();
        self.pending_nr_a2 = None;
    }

    /// Feeds one triggered measurement report; returns the HO decision, if
    /// the policy makes one now.
    pub fn on_report(&mut self, report: &TriggeredReport, ctx: &PolicyContext<'_>) -> Option<HoDecision> {
        self.phase.push(report.event);
        let target = report.neighbors.first().and_then(|n| ctx.candidates.get(n.pci));
        match (self.arch, report.event.rat, report.event.kind) {
            // --- SA: MCG handover on NR A3.
            (Arch::Sa, fiveg_rrc::EventRat::Nr, EventKind::A3) => {
                let target = target?;
                Some(self.decide(ReconfigAction::McgHandover { target: ctx.deployment.cell(target).pci }))
            }
            (Arch::Sa, _, _) => None,

            // --- LTE-only: A3/A5 drive LTEH.
            (Arch::Lte, fiveg_rrc::EventRat::Lte, EventKind::A3 | EventKind::A5) => {
                let target = target?;
                Some(self.decide(ReconfigAction::LteHandover { target: ctx.deployment.cell(target).pci }))
            }
            (Arch::Lte, _, _) => None,

            // --- NSA, LTE leg: anchor mobility.
            (Arch::Nsa, fiveg_rrc::EventRat::Lte, EventKind::A3 | EventKind::A5) => {
                let target = target?;
                let target_pci = ctx.deployment.cell(target).pci;
                if let Some(scg) = ctx.serving_nr {
                    let tgt_tower = ctx.deployment.cell(target).tower;
                    // intra-eNB change (same tower, e.g. a sector switch):
                    // the SCG always survives
                    let same_enb = ctx.serving_lte.map(|c| ctx.deployment.cell(c).tower == tgt_tower).unwrap_or(false);
                    // inter-eNB: the SCG survives only when the target eNB
                    // still reaches the gNB over X2
                    let gnb_tower = ctx.deployment.cell(scg).tower;
                    let gnb_pos = ctx.deployment.towers[gnb_tower.0 as usize].pos;
                    let tgt_pos = ctx.deployment.towers[tgt_tower.0 as usize].pos;
                    if same_enb || gnb_pos.distance(&tgt_pos) <= self.mnbh_reach_m {
                        return Some(self.decide(ReconfigAction::MenbHandover { target: target_pci }));
                    }
                }
                Some(self.decide(ReconfigAction::LteHandover { target: target_pci }))
            }
            (Arch::Nsa, fiveg_rrc::EventRat::Lte, _) => None,

            // --- NSA, NR leg.
            (Arch::Nsa, fiveg_rrc::EventRat::Nr, EventKind::B1) => {
                match (ctx.serving_nr, &self.pending_nr_a2) {
                    // no SCG yet: B1 discovers coverage -> SCG Addition
                    (None, _) => {
                        let target = target?;
                        Some(self.decide(ReconfigAction::ScgAddition { nr_target: ctx.deployment.cell(target).pci }))
                    }
                    // SCG fading (recent NR-A2) and a different gNB visible ->
                    // SCG Change
                    (Some(serving), Some((since, _))) if ctx.t - since <= self.scgc_window_s => {
                        let target = target?;
                        if ctx.deployment.same_gnb(serving, target) {
                            return None; // same gNB: A3/SCGM territory
                        }
                        Some(self.decide(ReconfigAction::ScgChange { nr_target: ctx.deployment.cell(target).pci }))
                    }
                    _ => None,
                }
            }
            (Arch::Nsa, fiveg_rrc::EventRat::Nr, EventKind::A2) => {
                if ctx.serving_nr.is_some() {
                    self.pending_nr_a2 = Some((ctx.t, self.phase.clone()));
                }
                None
            }
            (Arch::Nsa, fiveg_rrc::EventRat::Nr, EventKind::A3) => {
                let serving = ctx.serving_nr?;
                let target = target?;
                if ctx.deployment.same_gnb(serving, target) {
                    Some(self.decide(ReconfigAction::ScgModification { nr_target: ctx.deployment.cell(target).pci }))
                } else {
                    // no direct inter-gNB HO in NSA (§2)
                    None
                }
            }
            (Arch::Nsa, fiveg_rrc::EventRat::Nr, _) => None,
        }
    }

    /// Clock tick: lets a pending NR-A2 decay into an SCG Release once the
    /// SCGC window closes without a B1.
    pub fn tick(&mut self, ctx: &PolicyContext<'_>) -> Option<HoDecision> {
        if let Some((since, _)) = self.pending_nr_a2 {
            if ctx.t - since > self.scgc_window_s && ctx.serving_nr.is_some() {
                return Some(self.decide(ReconfigAction::ScgRelease));
            }
        }
        None
    }

    fn decide(&mut self, action: ReconfigAction) -> HoDecision {
        let phase = std::mem::take(&mut self.phase);
        self.pending_nr_a2 = None;
        if self.telemetry.is_enabled() {
            self.telemetry.incr("policy.decisions");
            self.telemetry.incr(&format!("policy.decide.{}", HoType::from_action(&action).acronym()));
        }
        HoDecision { action, phase }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::Environment;
    use crate::measure::Measurement;
    use fiveg_geo::{routes, Point};
    use fiveg_radio::Rrs;
    use fiveg_rrc::{NeighborMeas, Pci};

    fn deployment() -> Deployment {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 15_000.0);
        Deployment::generate(&route, Carrier::OpX, Environment::Freeway, Arch::Nsa, 7)
    }

    fn report(event: MeasEvent, neighbor: Option<Pci>, t: f64) -> TriggeredReport {
        TriggeredReport {
            event,
            serving: Measurement {
                pci: Pci(1),
                rrs: Rrs { rsrp_dbm: -110.0, rsrq_db: -12.0, sinr_db: 3.0 },
                freq_mhz: 617.0,
                group: None,
            },
            neighbors: neighbor
                .map(|pci| vec![NeighborMeas { pci, rrs: Rrs { rsrp_dbm: -100.0, rsrq_db: -10.0, sinr_db: 8.0 } }])
                .unwrap_or_default(),
            t,
        }
    }

    struct Ctx {
        deployment: Deployment,
        candidates: PciTable,
    }

    fn ctx_with(d: Deployment) -> Ctx {
        let mut candidates = PciTable::new();
        for c in &d.cells {
            candidates.insert_first(c.pci, c.id);
        }
        Ctx { deployment: d, candidates }
    }

    fn pctx<'a>(c: &'a Ctx, lte: Option<CellId>, nr: Option<CellId>, t: f64) -> PolicyContext<'a> {
        PolicyContext { deployment: &c.deployment, serving_lte: lte, serving_nr: nr, candidates: &c.candidates, t }
    }

    #[test]
    fn b1_without_scg_is_scga() {
        let c = ctx_with(deployment());
        let nr = c.deployment.nr_cells()[0];
        let nr_pci = c.deployment.cell(nr).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let d = p
            .on_report(
                &report(MeasEvent::nr(EventKind::B1), Some(nr_pci), 1.0),
                &pctx(&c, Some(c.deployment.lte_cells()[0]), None, 1.0),
            )
            .expect("SCGA");
        assert_eq!(d.ho_type(), HoType::Scga);
        assert_eq!(d.phase, vec![MeasEvent::nr(EventKind::B1)]);
    }

    #[test]
    fn a2_then_timeout_is_scgr() {
        let c = ctx_with(deployment());
        let nr = c.deployment.nr_cells()[0];
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let lte = Some(c.deployment.lte_cells()[0]);
        assert!(p.on_report(&report(MeasEvent::nr(EventKind::A2), None, 1.0), &pctx(&c, lte, Some(nr), 1.0)).is_none());
        // window not yet closed
        assert!(p.tick(&pctx(&c, lte, Some(nr), 2.0)).is_none());
        // closed -> release
        let d = p.tick(&pctx(&c, lte, Some(nr), 3.5)).expect("SCGR");
        assert_eq!(d.ho_type(), HoType::Scgr);
        assert_eq!(d.phase, vec![MeasEvent::nr(EventKind::A2)]);
    }

    #[test]
    fn a2_then_b1_other_gnb_is_scgc() {
        let c = ctx_with(deployment());
        // find two NR cells on different towers
        let nr1 = c.deployment.nr_cells()[0];
        let nr2 = *c.deployment.nr_cells().iter().find(|&&id| !c.deployment.same_gnb(nr1, id)).expect("second gNB");
        let nr2_pci = c.deployment.cell(nr2).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let lte = Some(c.deployment.lte_cells()[0]);
        assert!(p
            .on_report(&report(MeasEvent::nr(EventKind::A2), None, 1.0), &pctx(&c, lte, Some(nr1), 1.0))
            .is_none());
        let d = p
            .on_report(&report(MeasEvent::nr(EventKind::B1), Some(nr2_pci), 1.8), &pctx(&c, lte, Some(nr1), 1.8))
            .expect("SCGC");
        assert_eq!(d.ho_type(), HoType::Scgc);
        assert_eq!(d.phase, vec![MeasEvent::nr(EventKind::A2), MeasEvent::nr(EventKind::B1)]);
    }

    #[test]
    fn nr_a3_same_gnb_is_scgm() {
        let route = routes::rectangular_loop(Point::ORIGIN, 1200.0, 900.0);
        let d = Deployment::generate(&route, Carrier::OpX, Environment::UrbanDense, Arch::Nsa, 9);
        let c = ctx_with(d);
        // find two NR sectors on the same tower
        let mut pair = None;
        'outer: for &a in c.deployment.nr_cells() {
            for &b in c.deployment.nr_cells() {
                if a != b && c.deployment.same_gnb(a, b) {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("sector pair");
        let b_pci = c.deployment.cell(b).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let lte = Some(c.deployment.lte_cells()[0]);
        let d = p
            .on_report(&report(MeasEvent::nr(EventKind::A3), Some(b_pci), 1.0), &pctx(&c, lte, Some(a), 1.0))
            .expect("SCGM");
        assert_eq!(d.ho_type(), HoType::Scgm);
    }

    #[test]
    fn nr_a3_cross_gnb_is_ignored() {
        let c = ctx_with(deployment());
        let nr1 = c.deployment.nr_cells()[0];
        let nr2 = *c.deployment.nr_cells().iter().find(|&&id| !c.deployment.same_gnb(nr1, id)).unwrap();
        let nr2_pci = c.deployment.cell(nr2).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let lte = Some(c.deployment.lte_cells()[0]);
        assert!(p
            .on_report(&report(MeasEvent::nr(EventKind::A3), Some(nr2_pci), 1.0), &pctx(&c, lte, Some(nr1), 1.0))
            .is_none());
    }

    #[test]
    fn lte_a3_without_scg_is_lteh() {
        let c = ctx_with(deployment());
        let lte2 = c.deployment.lte_cells()[1];
        let pci2 = c.deployment.cell(lte2).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let d = p
            .on_report(
                &report(MeasEvent::lte(EventKind::A3), Some(pci2), 1.0),
                &pctx(&c, Some(c.deployment.lte_cells()[0]), None, 1.0),
            )
            .expect("LTEH");
        assert_eq!(d.ho_type(), HoType::Lteh);
    }

    #[test]
    fn sa_a3_is_mcgh() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 15_000.0);
        let d = Deployment::generate(&route, Carrier::OpY, Environment::Freeway, Arch::Sa, 11);
        let c = ctx_with(d);
        let nr1 = c.deployment.nr_cells()[0];
        let nr2 = c.deployment.nr_cells()[1];
        let pci2 = c.deployment.cell(nr2).pci;
        let mut p = HoPolicy::new(Carrier::OpY, Arch::Sa);
        let d = p
            .on_report(&report(MeasEvent::nr(EventKind::A3), Some(pci2), 1.0), &pctx(&c, None, Some(nr1), 1.0))
            .expect("MCGH");
        assert_eq!(d.ho_type(), HoType::Mcgh);
    }

    #[test]
    fn carriers_have_distinct_configs() {
        let x = HoPolicy::new(Carrier::OpX, Arch::Nsa).nr_configs(true);
        let y = HoPolicy::new(Carrier::OpY, Arch::Nsa).nr_configs(true);
        // the A2 (SINR), A2 (RSRP) and B1 thresholds all differ per carrier
        assert_ne!(x[0].threshold_dbm, y[0].threshold_dbm);
        assert_ne!(x[1].threshold_dbm, y[1].threshold_dbm);
    }

    #[test]
    fn decision_resets_phase() {
        let c = ctx_with(deployment());
        let nr = c.deployment.nr_cells()[0];
        let nr_pci = c.deployment.cell(nr).pci;
        let mut p = HoPolicy::new(Carrier::OpX, Arch::Nsa);
        let lte = Some(c.deployment.lte_cells()[0]);
        let _ = p.on_report(&report(MeasEvent::nr(EventKind::B1), Some(nr_pci), 1.0), &pctx(&c, lte, None, 1.0));
        assert!(p.phase().is_empty());
    }
}
