//! The handover taxonomy of Table 2.
//!
//! | Procedure | Access-tech change | 4G/5G HO | Acronym |
//! |-----------|--------------------|----------|---------|
//! | SCG Addition | 4G → 5G | 5G | SCGA |
//! | SCG Release | 5G → 4G | 5G | SCGR |
//! | SCG Modification | 5G → 5G | 5G | SCGM |
//! | SCG Change | 5G → 4G → 5G | 5G | SCGC |
//! | MeNB HO | 5G → 5G | 4G | MNBH |
//! | MCG HO (SA) | 5G → 5G | 5G | MCGH |
//! | LTE HO (NSA) | 5G → 5G | 4G | LTEH |
//! | LTE HO (LTE) | 4G → 4G | 4G | LTEH |

use fiveg_rrc::ReconfigAction;
use serde::{Deserialize, Serialize};

/// Deployment architecture a UE is operating under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Arch {
    /// Plain 4G/LTE (no 5G service).
    Lte,
    /// 5G non-standalone: LTE control plane (NSA-4C) + NR data plane.
    Nsa,
    /// 5G standalone: NR control and data planes.
    Sa,
}

impl Arch {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Arch::Lte => "LTE",
            Arch::Nsa => "NSA",
            Arch::Sa => "SA",
        }
    }
}

/// Radio access technology currently carrying user data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioTech {
    /// 4G LTE.
    Lte,
    /// 5G New Radio.
    Nr,
}

/// Whether a HO is a "4G HO" or a "5G HO" in Table 2's classification
/// (which radio's procedures perform it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HoCategory {
    /// Performed by 4G procedures (changes the LTE cell).
    FourG,
    /// Performed by 5G procedures (changes NR cells / the SCG).
    FiveG,
}

/// The handover procedure types observed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HoType {
    /// LTE handover — between eNB cells, both in pure LTE and under NSA.
    Lteh,
    /// Master-eNB handover under NSA: LTE anchor changes, gNB kept.
    Mnbh,
    /// SCG Addition: NR leg attached (4G→5G).
    Scga,
    /// SCG Release: NR leg dropped (5G→4G).
    Scgr,
    /// SCG Modification: NR cell switch within the same gNB.
    Scgm,
    /// SCG Change: inter-gNB move via release+addition (5G→4G→5G).
    Scgc,
    /// MCG handover in SA 5G: NR cell to NR cell.
    Mcgh,
}

impl HoType {
    /// All HO types, in Table 2 order.
    pub const ALL: [HoType; 7] =
        [HoType::Scga, HoType::Scgr, HoType::Scgm, HoType::Scgc, HoType::Mnbh, HoType::Mcgh, HoType::Lteh];

    /// The paper's acronym.
    pub fn acronym(&self) -> &'static str {
        match self {
            HoType::Lteh => "LTEH",
            HoType::Mnbh => "MNBH",
            HoType::Scga => "SCGA",
            HoType::Scgr => "SCGR",
            HoType::Scgm => "SCGM",
            HoType::Scgc => "SCGC",
            HoType::Mcgh => "MCGH",
        }
    }

    /// Table 2's "Access Tech. Change" column.
    ///
    /// `in_nsa` matters only for LTEH, whose access change is 5G→5G under
    /// NSA (the UE keeps using 5G data; the anchor moves) but 4G→4G in LTE.
    pub fn access_change(&self, in_nsa: bool) -> &'static str {
        match self {
            HoType::Scga => "4G→5G",
            HoType::Scgr => "5G→4G",
            HoType::Scgm => "5G→5G",
            HoType::Scgc => "5G→4G→5G",
            HoType::Mnbh => "5G→5G",
            HoType::Mcgh => "5G→5G",
            HoType::Lteh => {
                if in_nsa {
                    "5G→5G"
                } else {
                    "4G→4G"
                }
            }
        }
    }

    /// Table 2's "4G/5G HO" column: which radio performs the procedure.
    pub fn category(&self) -> HoCategory {
        match self {
            HoType::Scga | HoType::Scgr | HoType::Scgm | HoType::Scgc | HoType::Mcgh => HoCategory::FiveG,
            HoType::Mnbh | HoType::Lteh => HoCategory::FourG,
        }
    }

    /// True for "horizontal" HOs in the paper's Fig. 16 sense: HOs that move
    /// between cells of the same technology while 5G service continues
    /// (SCGM, SCGC, MCGH, and LTEH/MNBH under NSA).
    pub fn is_horizontal(&self) -> bool {
        !matches!(self, HoType::Scga | HoType::Scgr)
    }

    /// Maps the wire-level reconfiguration action to its HO type.
    pub fn from_action(action: &ReconfigAction) -> HoType {
        match action {
            ReconfigAction::LteHandover { .. } => HoType::Lteh,
            ReconfigAction::ScgAddition { .. } => HoType::Scga,
            ReconfigAction::ScgRelease => HoType::Scgr,
            ReconfigAction::ScgModification { .. } => HoType::Scgm,
            ReconfigAction::ScgChange { .. } => HoType::Scgc,
            ReconfigAction::MenbHandover { .. } => HoType::Mnbh,
            ReconfigAction::McgHandover { .. } => HoType::Mcgh,
        }
    }

    /// The leg whose serving cell this procedure reconfigures: the NR leg
    /// for every SCG procedure and the SA MCGH, the LTE leg for LTEH/MNBH.
    /// This is the span key's "leg" dimension in `fiveg-trace`: the
    /// source→target cell pair of a HO span is read off this leg.
    pub fn leg(&self) -> RadioTech {
        match self {
            HoType::Scga | HoType::Scgr | HoType::Scgm | HoType::Scgc | HoType::Mcgh => RadioTech::Nr,
            HoType::Mnbh | HoType::Lteh => RadioTech::Lte,
        }
    }

    /// Which radios have their data plane interrupted during this HO's
    /// execution stage (footnote 1 of §5.2: "In NSA, 5G HOs do not affect
    /// the 4G/LTE data plane, however, 4G HOs interrupt data activity on 5G
    /// radio as well").
    pub fn interrupts(&self) -> (bool, bool) {
        // returns (lte_interrupted, nr_interrupted)
        match self.category() {
            HoCategory::FourG => (true, true),
            HoCategory::FiveG => (false, true),
        }
    }
}

impl std::fmt::Display for HoType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.acronym())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_rrc::Pci;

    #[test]
    fn table2_categories() {
        assert_eq!(HoType::Scga.category(), HoCategory::FiveG);
        assert_eq!(HoType::Scgr.category(), HoCategory::FiveG);
        assert_eq!(HoType::Scgm.category(), HoCategory::FiveG);
        assert_eq!(HoType::Scgc.category(), HoCategory::FiveG);
        assert_eq!(HoType::Mcgh.category(), HoCategory::FiveG);
        assert_eq!(HoType::Mnbh.category(), HoCategory::FourG);
        assert_eq!(HoType::Lteh.category(), HoCategory::FourG);
    }

    #[test]
    fn table2_access_changes() {
        assert_eq!(HoType::Scga.access_change(true), "4G→5G");
        assert_eq!(HoType::Scgr.access_change(true), "5G→4G");
        assert_eq!(HoType::Scgc.access_change(true), "5G→4G→5G");
        assert_eq!(HoType::Lteh.access_change(false), "4G→4G");
        assert_eq!(HoType::Lteh.access_change(true), "5G→5G");
    }

    #[test]
    fn vertical_hos_are_scga_scgr() {
        assert!(!HoType::Scga.is_horizontal());
        assert!(!HoType::Scgr.is_horizontal());
        assert!(HoType::Scgm.is_horizontal());
        assert!(HoType::Scgc.is_horizontal());
        assert!(HoType::Mcgh.is_horizontal());
    }

    #[test]
    fn interruption_semantics() {
        // 4G HOs halt both radios; 5G HOs spare LTE.
        assert_eq!(HoType::Lteh.interrupts(), (true, true));
        assert_eq!(HoType::Mnbh.interrupts(), (true, true));
        assert_eq!(HoType::Scgm.interrupts(), (false, true));
        assert_eq!(HoType::Scga.interrupts(), (false, true));
    }

    #[test]
    fn from_action_covers_all() {
        assert_eq!(HoType::from_action(&ReconfigAction::ScgChange { nr_target: Pci(3) }), HoType::Scgc);
        assert_eq!(HoType::from_action(&ReconfigAction::MenbHandover { target: Pci(3) }), HoType::Mnbh);
        assert_eq!(HoType::from_action(&ReconfigAction::ScgRelease), HoType::Scgr);
    }

    #[test]
    fn acronyms_and_display() {
        for t in HoType::ALL {
            assert_eq!(t.to_string(), t.acronym());
            assert_eq!(t.acronym().len(), 4);
        }
    }

    #[test]
    fn arch_labels() {
        assert_eq!(Arch::Nsa.label(), "NSA");
        assert_eq!(Arch::Sa.label(), "SA");
        assert_eq!(Arch::Lte.label(), "LTE");
    }
}
