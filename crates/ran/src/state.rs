//! The per-UE connection state machine: executes HO commands through their
//! T1/T2 stages and applies the Table 2 transitions.
//!
//! Timeline of one HO (Appendix A.1):
//!
//! ```text
//! MR fires          HO command (RRCReconfiguration)      RACH done, Complete
//!    |----------- T1 ------------|------------ T2 -------------|
//!    decision & preparation        execution (data plane halted
//!    (network side)                on the affected radios)
//! ```
//!
//! NSA subtlety: "NSA 5G does not have an option to perform a direct HO
//! between two gNBs" and an LTE anchor change that cannot keep the current
//! gNB forces the SCG out first. The state machine models that with an
//! action queue: an `LteHandover` arriving while an SCG is attached expands
//! into `[ScgRelease, LteHandover]`, each a full HO with its own stages and
//! signaling — which is why NSA HOs are so much more frequent (§5.1).

use crate::cell::CellId;
use crate::deploy::Deployment;
use crate::ho::{Arch, HoType};
use crate::stages::{StageModel, StageSample};
use fiveg_radio::BandClass;
use fiveg_rrc::{MeasEvent, Pci, RachKind, ReconfigAction, RrcMessage};
use fiveg_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bearer configuration of the NSA data plane (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BearerMode {
    /// MCG split bearer: traffic over both LTE and NR.
    Dual,
    /// SCG bearer: all traffic on NR ("5G-only").
    FiveGOnly,
}

/// A completed handover, as recorded in the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoverRecord {
    /// Procedure type.
    pub ho_type: HoType,
    /// Architecture the UE was operating under.
    pub arch: Arch,
    /// Band class of the NR leg involved (serving NR band, or the target's
    /// for SCGA), `None` for pure-LTE HOs.
    pub nr_band: Option<BandClass>,
    /// Time the network began preparing (the triggering MR's arrival), s.
    pub t_decision: f64,
    /// Time the HO command reached the UE (= decision + T1), s.
    pub t_command: f64,
    /// Time the HO completed (= command + T2), s.
    pub t_complete: f64,
    /// Sampled stage durations.
    pub stages: StageSample,
    /// Source cells (LTE, NR) before the HO.
    pub source_lte: Option<Pci>,
    /// Source NR cell before the HO.
    pub source_nr: Option<Pci>,
    /// Target cell of the procedure (None for SCGR).
    pub target: Option<Pci>,
    /// Whether the involved gNB was co-located with an eNB tower.
    pub co_located: bool,
    /// Whether the 4G and 5G serving PCIs were equal at decision time
    /// (the paper's §6.3 observable for co-location).
    pub same_pci: bool,
    /// The MR event sequence that triggered the decision.
    pub trigger_phase: Vec<MeasEvent>,
    /// Which radios' data planes the execution stage halts (lte, nr).
    pub interrupts: (bool, bool),
}

impl HandoverRecord {
    /// Total duration in ms.
    pub fn duration_ms(&self) -> f64 {
        self.stages.total_ms()
    }
}

/// Events emitted by the state machine as simulated time advances.
#[derive(Debug, Clone, PartialEq)]
pub enum HoEvent {
    /// The HO command went out (end of T1). Carries the wire message.
    CommandSent(RrcMessage),
    /// The HO finished (end of T2): the record plus the uplink completion
    /// signaling (`RRCReconfigurationComplete` + RACH pair).
    Completed(HandoverRecord, Vec<RrcMessage>),
}

/// Coarse phase of the in-flight HO procedure, exposed so external
/// invariant checkers (fiveg-oracle) can witness the prepare → execute →
/// complete ordering without reaching into the private `Phase` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoPhase {
    /// No HO in flight.
    Idle,
    /// Network-side preparation (T1 running; no command sent yet).
    Preparing,
    /// UE-side execution (command sent; completion pending).
    Executing,
}

/// Snapshot of what is connected right now, for the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectionState {
    /// Serving LTE cell (MCG primary), if any.
    pub lte: Option<CellId>,
    /// Serving NR cell (SCG primary / SA serving), if any.
    pub nr: Option<CellId>,
    /// LTE data plane currently halted by an executing HO.
    pub lte_interrupted: bool,
    /// NR data plane currently halted by an executing HO.
    pub nr_interrupted: bool,
}

#[derive(Debug, Clone)]
enum Phase {
    Idle,
    /// Network preparing; command goes out at `until`.
    Preparing {
        until: f64,
        action: ReconfigAction,
        target: Option<CellId>,
        record: Box<PendingRecord>,
    },
    /// UE executing; completes at `until`.
    Executing {
        until: f64,
        action: ReconfigAction,
        target: Option<CellId>,
        record: Box<PendingRecord>,
    },
}

#[derive(Debug, Clone)]
struct PendingRecord {
    ho_type: HoType,
    arch: Arch,
    nr_band: Option<BandClass>,
    t_decision: f64,
    stages: StageSample,
    source_lte: Option<Pci>,
    source_nr: Option<Pci>,
    target_pci: Option<Pci>,
    co_located: bool,
    same_pci: bool,
    trigger_phase: Vec<MeasEvent>,
}

/// The state machine.
#[derive(Debug, Clone)]
pub struct RanStateMachine {
    arch: Arch,
    lte: Option<CellId>,
    nr: Option<CellId>,
    phase: Phase,
    /// Follow-up actions queued behind the in-flight one (e.g. the LTEH
    /// behind a forced SCGR).
    queue: VecDeque<(ReconfigAction, Option<CellId>, Vec<MeasEvent>)>,
    /// Completion time of the HO whose queued follow-up is ready to begin.
    /// The chain begins on the *next* [`RanStateMachine::step`] call (at
    /// this decision time) rather than inside the completing step, so the
    /// caller gets a chance to fail the finished HO and
    /// [`RanStateMachine::abort_chain`] the rest of the compound procedure.
    chain_at: Option<f64>,
    stage_model: StageModel,
    seq: u64,
    telemetry: Telemetry,
}

impl RanStateMachine {
    /// Creates an idle state machine under `arch`.
    pub fn new(arch: Arch, seed: u64) -> Self {
        Self {
            arch,
            lte: None,
            nr: None,
            phase: Phase::Idle,
            queue: VecDeque::new(),
            chain_at: None,
            stage_model: StageModel::new(seed),
            seq: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry recorder (disabled by default). The state
    /// machine journals every HO it *starts* — including the forced SCG
    /// releases it queues internally, which its caller never sees decided.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.telemetry = tele;
    }

    /// Attaches the UE to initial serving cells (connection establishment,
    /// not counted as a HO).
    pub fn attach(&mut self, lte: Option<CellId>, nr: Option<CellId>) {
        self.lte = lte;
        self.nr = nr;
    }

    /// The architecture this connection runs under.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Current serving LTE cell.
    pub fn serving_lte(&self) -> Option<CellId> {
        self.lte
    }

    /// Current serving NR cell.
    pub fn serving_nr(&self) -> Option<CellId> {
        self.nr
    }

    /// Count of handovers started so far.
    pub fn ho_count(&self) -> u64 {
        self.seq
    }

    /// True when a HO is being prepared or executed (new decisions are
    /// deferred by the network until the current one finishes).
    pub fn busy(&self) -> bool {
        !matches!(self.phase, Phase::Idle) || !self.queue.is_empty()
    }

    /// Coarse phase of the in-flight HO (the state-transition witness for
    /// external invariant checkers).
    pub fn ho_phase(&self) -> HoPhase {
        match self.phase {
            Phase::Idle => HoPhase::Idle,
            Phase::Preparing { .. } => HoPhase::Preparing,
            Phase::Executing { .. } => HoPhase::Executing,
        }
    }

    /// Number of follow-up actions queued behind the in-flight HO.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Abandons any queued follow-up actions and the pending chain marker.
    /// The engine's fault-injection path calls this when a completed HO is
    /// converted into a failure: the rest of the compound procedure (e.g.
    /// the LTEH behind a forced SCGR) must not run against the rolled-back
    /// serving cells. Queued actions were never begun, so no preparation is
    /// orphaned and `ho_count` stays consistent.
    pub fn abort_chain(&mut self) {
        self.queue.clear();
        self.chain_at = None;
    }

    /// Connection snapshot for the link layer.
    pub fn connection(&self) -> ConnectionState {
        let (lte_i, nr_i) = match &self.phase {
            Phase::Executing { record, .. } => {
                let (l, n) = record.ho_type.interrupts();
                (l, n)
            }
            _ => (false, false),
        };
        ConnectionState { lte: self.lte, nr: self.nr, lte_interrupted: lte_i, nr_interrupted: nr_i }
    }

    /// Begins a handover decided by the policy at time `t`.
    ///
    /// `target` is the resolved target cell (`None` for SCGR). Does nothing
    /// if a HO is already in flight (`busy()`); callers should check first.
    pub fn start(
        &mut self,
        action: ReconfigAction,
        target: Option<CellId>,
        trigger_phase: Vec<MeasEvent>,
        deployment: &Deployment,
        t: f64,
    ) {
        if self.busy() {
            return;
        }
        // NSA: an anchor change that abandons the gNB forces the SCG out first.
        if self.arch == Arch::Nsa && self.nr.is_some() {
            if let ReconfigAction::LteHandover { .. } = action {
                self.queue.push_back((action, target, Vec::new()));
                self.begin(ReconfigAction::ScgRelease, None, trigger_phase, deployment, t);
                return;
            }
        }
        self.begin(action, target, trigger_phase, deployment, t);
    }

    fn begin(
        &mut self,
        action: ReconfigAction,
        target: Option<CellId>,
        trigger_phase: Vec<MeasEvent>,
        deployment: &Deployment,
        t: f64,
    ) {
        let ho_type = HoType::from_action(&action);
        // band class of the NR leg: the serving NR cell, or the target for SCGA
        let nr_ref = self.nr.or(if ho_type == HoType::Scga || ho_type == HoType::Mcgh { target } else { None });
        let nr_band = nr_ref.map(|c| deployment.cell(c).band.class());
        let co_located = nr_ref.map(|c| deployment.gnb_co_located(c)).unwrap_or(true);
        let source_lte = self.lte.map(|c| deployment.cell(c).pci);
        let source_nr = self.nr.map(|c| deployment.cell(c).pci);
        let same_pci = match (source_lte, source_nr) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        let band_for_stage = nr_band.unwrap_or(BandClass::Mid);
        let stages = self.stage_model.sample(self.seq, ho_type, self.arch, band_for_stage, co_located);
        self.seq += 1;
        self.telemetry.incr("ran.ho_started");
        self.telemetry.record(
            t,
            Event::HoStart {
                ho_type: ho_type.acronym().to_string(),
                target_pci: target.map(|c| deployment.cell(c).pci.0),
            },
        );
        let record = PendingRecord {
            ho_type,
            arch: self.arch,
            nr_band,
            t_decision: t,
            stages,
            source_lte,
            source_nr,
            target_pci: target.map(|c| deployment.cell(c).pci),
            co_located,
            same_pci,
            trigger_phase,
        };
        self.phase = Phase::Preparing { until: t + stages.t1_ms / 1000.0, action, target, record: Box::new(record) };
    }

    /// Advances to time `t`, returning any signaling/completion events.
    pub fn step(&mut self, t: f64, deployment: &Deployment) -> Vec<HoEvent> {
        let mut out = Vec::new();
        // a follow-up whose predecessor completed (and was not failed by the
        // caller) begins now, back-dated to the predecessor's completion time
        if let Some(at) = self.chain_at.take() {
            if let Some((action, target, phase)) = self.queue.pop_front() {
                self.begin(action, target, phase, deployment, at);
            }
        }
        loop {
            match std::mem::replace(&mut self.phase, Phase::Idle) {
                Phase::Idle => break,
                Phase::Preparing { until, action, target, record } => {
                    if t + 1e-9 < until {
                        self.phase = Phase::Preparing { until, action, target, record };
                        break;
                    }
                    out.push(HoEvent::CommandSent(RrcMessage::RrcReconfiguration { action }));
                    let t2_end = until + record.stages.t2_ms / 1000.0;
                    self.phase = Phase::Executing { until: t2_end, action, target, record };
                }
                Phase::Executing { until, action, target, record } => {
                    if t + 1e-9 < until {
                        self.phase = Phase::Executing { until, action, target, record };
                        break;
                    }
                    self.apply(&action, target);
                    let rec = HandoverRecord {
                        ho_type: record.ho_type,
                        arch: record.arch,
                        nr_band: record.nr_band,
                        t_decision: record.t_decision,
                        t_command: until - record.stages.t2_ms / 1000.0,
                        t_complete: until,
                        stages: record.stages,
                        source_lte: record.source_lte,
                        source_nr: record.source_nr,
                        target: record.target_pci,
                        co_located: record.co_located,
                        same_pci: record.same_pci,
                        trigger_phase: record.trigger_phase,
                        interrupts: record.ho_type.interrupts(),
                    };
                    let signaling = vec![
                        RrcMessage::Rach { kind: RachKind::Preamble },
                        RrcMessage::Rach { kind: RachKind::Response },
                        RrcMessage::RrcReconfigurationComplete,
                    ];
                    out.push(HoEvent::Completed(rec, signaling));
                    // a queued follow-up (the LTEH behind a forced SCGR)
                    // begins on the next step call, back-dated to `until` —
                    // deferred so the caller can fail this completion and
                    // abort_chain() before the follow-up ever starts
                    if !self.queue.is_empty() {
                        self.chain_at = Some(until);
                    }
                }
            }
        }
        out
    }

    fn apply(&mut self, action: &ReconfigAction, target: Option<CellId>) {
        match action {
            ReconfigAction::LteHandover { .. } | ReconfigAction::MenbHandover { .. } => {
                self.lte = target.or(self.lte);
            }
            ReconfigAction::ScgAddition { .. }
            | ReconfigAction::ScgModification { .. }
            | ReconfigAction::ScgChange { .. } => {
                self.nr = target.or(self.nr);
            }
            ReconfigAction::ScgRelease => {
                self.nr = None;
            }
            ReconfigAction::McgHandover { .. } => {
                self.nr = target.or(self.nr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::{Carrier, Environment};
    use fiveg_geo::{routes, Point};

    fn deployment() -> Deployment {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 15_000.0);
        Deployment::generate(&route, Carrier::OpX, Environment::Freeway, Arch::Nsa, 7)
    }

    fn run_until_complete(sm: &mut RanStateMachine, d: &Deployment, mut t: f64) -> (HandoverRecord, f64) {
        for _ in 0..10_000 {
            t += 0.01;
            for ev in sm.step(t, d) {
                if let HoEvent::Completed(rec, _) = ev {
                    return (rec, t);
                }
            }
        }
        panic!("HO never completed");
    }

    #[test]
    fn scga_attaches_nr() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 1);
        sm.attach(Some(d.lte_cells()[0]), None);
        let nr = d.nr_cells()[0];
        sm.start(ReconfigAction::ScgAddition { nr_target: d.cell(nr).pci }, Some(nr), vec![], &d, 0.0);
        assert!(sm.busy());
        let (rec, _) = run_until_complete(&mut sm, &d, 0.0);
        assert_eq!(rec.ho_type, HoType::Scga);
        assert_eq!(sm.serving_nr(), Some(nr));
        assert!(!sm.busy());
    }

    #[test]
    fn command_precedes_completion() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 2);
        sm.attach(Some(d.lte_cells()[0]), None);
        let nr = d.nr_cells()[0];
        sm.start(ReconfigAction::ScgAddition { nr_target: d.cell(nr).pci }, Some(nr), vec![], &d, 0.0);
        let mut got_command = false;
        let mut t = 0.0;
        'outer: for _ in 0..10_000 {
            t += 0.01;
            for ev in sm.step(t, &d) {
                match ev {
                    HoEvent::CommandSent(msg) => {
                        assert_eq!(msg.name(), "RRCReconfiguration");
                        got_command = true;
                    }
                    HoEvent::Completed(rec, signaling) => {
                        assert!(got_command, "command must come first");
                        assert!(rec.t_command > rec.t_decision);
                        assert!(rec.t_complete > rec.t_command);
                        assert_eq!(signaling.len(), 3);
                        break 'outer;
                    }
                }
            }
        }
        assert!(got_command);
    }

    #[test]
    fn scgr_detaches_nr() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 3);
        sm.attach(Some(d.lte_cells()[0]), Some(d.nr_cells()[0]));
        sm.start(ReconfigAction::ScgRelease, None, vec![], &d, 0.0);
        let (rec, _) = run_until_complete(&mut sm, &d, 0.0);
        assert_eq!(rec.ho_type, HoType::Scgr);
        assert_eq!(sm.serving_nr(), None);
    }

    #[test]
    fn lteh_with_scg_forces_release_first() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 4);
        let lte0 = d.lte_cells()[0];
        let lte1 = d.lte_cells()[1];
        sm.attach(Some(lte0), Some(d.nr_cells()[0]));
        sm.start(ReconfigAction::LteHandover { target: d.cell(lte1).pci }, Some(lte1), vec![], &d, 0.0);
        // first completion must be the SCGR
        let (rec1, t1) = run_until_complete(&mut sm, &d, 0.0);
        assert_eq!(rec1.ho_type, HoType::Scgr);
        assert_eq!(sm.serving_nr(), None);
        assert!(sm.busy(), "LTEH must still be queued");
        let (rec2, _) = run_until_complete(&mut sm, &d, t1);
        assert_eq!(rec2.ho_type, HoType::Lteh);
        assert_eq!(sm.serving_lte(), Some(lte1));
    }

    #[test]
    fn mnbh_keeps_scg() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 5);
        let nr = d.nr_cells()[0];
        let lte1 = d.lte_cells()[1];
        sm.attach(Some(d.lte_cells()[0]), Some(nr));
        sm.start(ReconfigAction::MenbHandover { target: d.cell(lte1).pci }, Some(lte1), vec![], &d, 0.0);
        let (rec, _) = run_until_complete(&mut sm, &d, 0.0);
        assert_eq!(rec.ho_type, HoType::Mnbh);
        assert_eq!(sm.serving_nr(), Some(nr), "MNBH keeps the gNB");
        assert_eq!(sm.serving_lte(), Some(lte1));
    }

    #[test]
    fn interruption_only_during_execution() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 6);
        sm.attach(Some(d.lte_cells()[0]), Some(d.nr_cells()[0]));
        let nr2 = *d.nr_cells().iter().find(|&&c| !d.same_gnb(c, d.nr_cells()[0])).unwrap();
        sm.start(ReconfigAction::ScgChange { nr_target: d.cell(nr2).pci }, Some(nr2), vec![], &d, 0.0);
        // during preparation: no interruption
        let _ = sm.step(0.001, &d);
        let c = sm.connection();
        assert!(!c.nr_interrupted && !c.lte_interrupted);
        // walk into execution
        let mut t = 0.0;
        let mut saw_exec_interrupt = false;
        for _ in 0..10_000 {
            t += 0.005;
            let evs = sm.step(t, &d);
            let conn = sm.connection();
            if conn.nr_interrupted {
                saw_exec_interrupt = true;
                // SCGC is a 5G HO: LTE must keep flowing
                assert!(!conn.lte_interrupted);
            }
            if evs.iter().any(|e| matches!(e, HoEvent::Completed(..))) {
                break;
            }
        }
        assert!(saw_exec_interrupt);
    }

    #[test]
    fn busy_machine_ignores_new_starts() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 7);
        sm.attach(Some(d.lte_cells()[0]), None);
        let nr = d.nr_cells()[0];
        sm.start(ReconfigAction::ScgAddition { nr_target: d.cell(nr).pci }, Some(nr), vec![], &d, 0.0);
        let count = sm.ho_count();
        sm.start(ReconfigAction::ScgRelease, None, vec![], &d, 0.0);
        assert_eq!(sm.ho_count(), count, "second start must be ignored while busy");
    }

    #[test]
    fn ho_phase_witnesses_prepare_execute_idle() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 11);
        sm.attach(Some(d.lte_cells()[0]), None);
        assert_eq!(sm.ho_phase(), HoPhase::Idle);
        let nr = d.nr_cells()[0];
        sm.start(ReconfigAction::ScgAddition { nr_target: d.cell(nr).pci }, Some(nr), vec![], &d, 0.0);
        assert_eq!(sm.ho_phase(), HoPhase::Preparing);
        let mut t = 0.0;
        let mut saw_executing = false;
        for _ in 0..10_000 {
            t += 0.01;
            let evs = sm.step(t, &d);
            if evs.iter().any(|e| matches!(e, HoEvent::CommandSent(_))) {
                assert_eq!(sm.ho_phase(), HoPhase::Executing);
            }
            if sm.ho_phase() == HoPhase::Executing {
                saw_executing = true;
            }
            if evs.iter().any(|e| matches!(e, HoEvent::Completed(..))) {
                assert_eq!(sm.ho_phase(), HoPhase::Idle);
                break;
            }
        }
        assert!(saw_executing, "the execution phase must be observable");
    }

    #[test]
    fn abort_chain_cancels_queued_follow_up() {
        let d = deployment();
        let mut sm = RanStateMachine::new(Arch::Nsa, 12);
        let lte1 = d.lte_cells()[1];
        sm.attach(Some(d.lte_cells()[0]), Some(d.nr_cells()[0]));
        let started = sm.ho_count();
        sm.start(ReconfigAction::LteHandover { target: d.cell(lte1).pci }, Some(lte1), vec![], &d, 0.0);
        assert_eq!(sm.queued(), 1, "the LTEH must be queued behind the forced SCGR");
        // complete the SCGR; the LTEH chain has not begun yet (deferred)
        let (rec, t1) = run_until_complete(&mut sm, &d, 0.0);
        assert_eq!(rec.ho_type, HoType::Scgr);
        assert_eq!(sm.ho_phase(), HoPhase::Idle);
        assert_eq!(sm.queued(), 1);
        // the caller fails the SCGR: the compound procedure is abandoned
        sm.attach(Some(d.lte_cells()[0]), Some(d.nr_cells()[0]));
        sm.abort_chain();
        assert!(!sm.busy(), "aborted chain must leave the machine idle");
        assert_eq!(sm.ho_count(), started + 1, "the queued LTEH was never begun");
        let evs = sm.step(t1 + 1.0, &d);
        assert!(evs.is_empty(), "no orphaned follow-up may fire after abort_chain");
        assert_eq!(sm.serving_nr(), Some(d.nr_cells()[0]), "rolled-back SCG stays attached");
    }

    #[test]
    fn record_same_pci_reflects_colocation_convention() {
        let d = deployment();
        // find a co-located NR cell (shares PCI with its eNB)
        let co = d.nr_cells().iter().find(|&&c| d.gnb_co_located(c)).copied();
        if let Some(nr) = co {
            let enb_tower = d.assoc_enb_tower(nr);
            let lte_cell = d.towers[enb_tower.0 as usize].cells.iter().find(|&&c| !d.cell(c).is_nr()).copied().unwrap();
            let mut sm = RanStateMachine::new(Arch::Nsa, 8);
            sm.attach(Some(lte_cell), Some(nr));
            sm.start(ReconfigAction::ScgRelease, None, vec![], &d, 0.0);
            let (rec, _) = run_until_complete(&mut sm, &d, 0.0);
            assert_eq!(rec.same_pci, d.cell(lte_cell).pci == d.cell(nr).pci);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::carrier::{Carrier, Environment};
    use fiveg_geo::{routes, Point};
    use proptest::prelude::*;

    fn deployment() -> Deployment {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 12_000.0);
        Deployment::generate(&route, Carrier::OpX, Environment::Freeway, Arch::Nsa, 3)
    }

    /// Random mobility decisions applied through the state machine keep its
    /// invariants: records never overlap, SCG presence matches the action
    /// semantics, and the machine always becomes idle again.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Scga(usize),
        Scgr,
        Scgm(usize),
        Mnbh(usize),
        Lteh(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..64).prop_map(Op::Scga),
            Just(Op::Scgr),
            (0usize..64).prop_map(Op::Scgm),
            (0usize..64).prop_map(Op::Mnbh),
            (0usize..64).prop_map(Op::Lteh),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_action_sequences_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..20)) {
            let d = deployment();
            let nr_cells = d.nr_cells();
            let lte_cells = d.lte_cells();
            let mut sm = RanStateMachine::new(Arch::Nsa, 9);
            sm.attach(Some(lte_cells[0]), None);
            let mut t = 0.0;
            let mut records: Vec<HandoverRecord> = Vec::new();
            for op in &ops {
                // drive the machine to idle first
                for _ in 0..20_000 {
                    if !sm.busy() {
                        break;
                    }
                    t += 0.01;
                    for ev in sm.step(t, &d) {
                        if let HoEvent::Completed(rec, _) = ev {
                            records.push(rec);
                        }
                    }
                }
                prop_assert!(!sm.busy(), "machine must drain");
                let (action, target) = match *op {
                    Op::Scga(i) => {
                        if sm.serving_nr().is_some() { continue; }
                        let c = nr_cells[i % nr_cells.len()];
                        (ReconfigAction::ScgAddition { nr_target: d.cell(c).pci }, Some(c))
                    }
                    Op::Scgr => {
                        if sm.serving_nr().is_none() { continue; }
                        (ReconfigAction::ScgRelease, None)
                    }
                    Op::Scgm(i) => {
                        if sm.serving_nr().is_none() { continue; }
                        let c = nr_cells[i % nr_cells.len()];
                        (ReconfigAction::ScgModification { nr_target: d.cell(c).pci }, Some(c))
                    }
                    Op::Mnbh(i) => {
                        let c = lte_cells[i % lte_cells.len()];
                        (ReconfigAction::MenbHandover { target: d.cell(c).pci }, Some(c))
                    }
                    Op::Lteh(i) => {
                        let c = lte_cells[i % lte_cells.len()];
                        (ReconfigAction::LteHandover { target: d.cell(c).pci }, Some(c))
                    }
                };
                sm.start(action, target, vec![], &d, t);
            }
            // drain the tail
            for _ in 0..40_000 {
                if !sm.busy() {
                    break;
                }
                t += 0.01;
                for ev in sm.step(t, &d) {
                    if let HoEvent::Completed(rec, _) = ev {
                        records.push(rec);
                    }
                }
            }
            prop_assert!(!sm.busy());
            // invariants over the record stream
            for w in records.windows(2) {
                prop_assert!(w[0].t_complete <= w[1].t_decision + 1e-9, "records must not overlap");
            }
            for r in &records {
                prop_assert!(r.t_decision < r.t_command && r.t_command < r.t_complete);
                // an LTEH recorded while an SCG existed is impossible: the
                // machine releases first
                if r.ho_type == HoType::Lteh {
                    prop_assert!(r.source_nr.is_none(), "LTEH must never carry an SCG");
                }
            }
        }
    }
}
