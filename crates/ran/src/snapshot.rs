//! Per-tick radio snapshot: every in-radius cell's received power computed
//! exactly once per `(pos, t)` into a reusable scratch arena.
//!
//! The tick loop used to make up to four independent [`Deployment::strongest`]
//! calls per tick (LTE leg view, NR leg view, initial attach, RLF recovery),
//! each re-scanning the spatial grid, re-hashing the shadowing lattice and
//! allocating fresh `Vec`s. A [`RadioSnapshot`] is refreshed once per tick and
//! every consumer reads the same table, so the grid scan, the `rx_dbm`
//! evaluations and the ranking sort each happen exactly once — and the buffers
//! (including the per-cell noise-lattice caches, see
//! [`fiveg_radio::ChannelCache`]) persist across ticks, so the steady-state
//! tick allocates nothing here.
//!
//! Determinism: `rx_dbm` is a pure function of `(cell, pos, t)` and the
//! snapshot only memoizes it, so a snapshot-backed engine is bit-identical to
//! one that recomputes on every query. The ranking uses the total
//! [`rx_total_order`] (rx descending, then [`CellId`] ascending), the same
//! order [`Deployment::strongest`] produces.

use crate::cell::CellId;
use crate::deploy::{rx_total_order, Deployment};
use fiveg_geo::Point;
use fiveg_radio::ChannelCache;
use fiveg_rrc::Pci;

/// Reusable per-tick table of every in-radius cell's received power.
///
/// Usage per tick: call [`RadioSnapshot::refresh`] once with the UE position
/// and time, then read [`RadioSnapshot::strongest`] / [`RadioSnapshot::rx_dbm`]
/// from as many consumers as needed. All buffers are retained across calls.
///
/// A snapshot carries per-cell channel caches indexed by [`CellId`], so one
/// snapshot must stay bound to one [`Deployment`] for its whole life; create a
/// fresh snapshot per simulation run.
#[derive(Debug, Clone, Default)]
pub struct RadioSnapshot {
    /// Scratch for the grid scan ([`Deployment::cells_near_into`]).
    near: Vec<CellId>,
    /// LTE cells in radius, sorted by [`rx_total_order`].
    lte: Vec<(CellId, f64)>,
    /// NR cells in radius, sorted by [`rx_total_order`].
    nr: Vec<(CellId, f64)>,
    /// Per-cell noise-lattice memo, indexed by `CellId`.
    caches: Vec<ChannelCache>,
    pos: Point,
    t: f64,
}

impl RadioSnapshot {
    /// An empty snapshot; the first [`RadioSnapshot::refresh`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recomputes the snapshot for `(pos, t)`: one grid scan, then one
    /// `rx_dbm` per in-radius cell of each wanted technology. Legs that are
    /// not wanted (`want_lte` / `want_nr` false) are left empty so an
    /// LTE-only or SA run never pays for the other technology's cells.
    pub fn refresh(&mut self, d: &Deployment, pos: &Point, t: f64, radius_m: f64, want_lte: bool, want_nr: bool) {
        self.pos = *pos;
        self.t = t;
        self.lte.clear();
        self.nr.clear();
        if self.caches.len() < d.cells.len() {
            self.caches.resize(d.cells.len(), ChannelCache::default());
        }
        d.cells_near_into(pos, radius_m, &mut self.near);
        for &id in &self.near {
            let c = d.cell(id);
            if c.is_nr() {
                if want_nr {
                    self.nr.push((id, c.rx_dbm_cached(pos, t, &mut self.caches[id.0 as usize])));
                }
            } else if want_lte {
                self.lte.push((id, c.rx_dbm_cached(pos, t, &mut self.caches[id.0 as usize])));
            }
        }
        self.lte.sort_unstable_by(rx_total_order);
        self.nr.sort_unstable_by(rx_total_order);
    }

    /// The refreshed technology leg, strongest first — identical contents to
    /// `Deployment::strongest(pos, t, nr, radius_m)` at the refresh
    /// arguments, without the per-call scan and allocation.
    pub fn strongest(&self, nr: bool) -> &[(CellId, f64)] {
        if nr {
            &self.nr
        } else {
            &self.lte
        }
    }

    /// Received power of `id` at the snapshot's `(pos, t)`: a table lookup
    /// when the cell is in radius, a direct (bit-identical) evaluation
    /// otherwise.
    pub fn rx_dbm(&self, d: &Deployment, id: CellId) -> f64 {
        let leg = if d.cell(id).is_nr() { &self.nr } else { &self.lte };
        match leg.iter().find(|&&(c, _)| c == id) {
            Some(&(_, rx)) => rx,
            None => d.cell(id).rx_dbm(&self.pos, self.t),
        }
    }

    /// Position of the last [`RadioSnapshot::refresh`].
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Time of the last [`RadioSnapshot::refresh`].
    pub fn t(&self) -> f64 {
        self.t
    }
}

/// Fixed-capacity inline PCI → cell map with first-writer-wins inserts.
///
/// Replaces the transient `HashMap<Pci, CellId>` the leg view rebuilt every
/// tick: candidate sets are tiny (a dozen entries), so a linear scan over an
/// inline array beats hashing, and the steady-state tick allocates nothing.
/// Entries beyond the inline capacity spill to a heap `Vec` (SmallVec-style),
/// so the table is still correct for arbitrarily large candidate sets.
#[derive(Debug, Clone)]
pub struct PciTable {
    inline: [(Pci, CellId); Self::INLINE],
    len: usize,
    spill: Vec<(Pci, CellId)>,
}

impl Default for PciTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PciTable {
    /// Inline capacity: leg views cap candidates at 12 + serving per leg, so
    /// two merged legs fit inline with room to spare.
    const INLINE: usize = 32;

    /// An empty table. Allocation-free until `PciTable::INLINE` entries.
    pub fn new() -> Self {
        Self { inline: [(Pci(0), CellId(0)); Self::INLINE], len: 0, spill: Vec::new() }
    }

    /// Clears the table, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Inserts `pci → id` unless `pci` is already mapped (first writer wins,
    /// matching the `entry().or_insert()` idiom it replaces).
    pub fn insert_first(&mut self, pci: Pci, id: CellId) {
        if self.get(pci).is_some() {
            return;
        }
        if self.len < Self::INLINE {
            self.inline[self.len] = (pci, id);
            self.len += 1;
        } else {
            self.spill.push((pci, id));
        }
    }

    /// Looks up the cell mapped to `pci`.
    pub fn get(&self, pci: Pci) -> Option<CellId> {
        let inline_hit = self.inline[..self.len].iter().find(|&&(p, _)| p == pci);
        inline_hit.or_else(|| self.spill.iter().find(|&&(p, _)| p == pci)).map(|&(_, id)| id)
    }

    /// Number of distinct PCIs mapped.
    pub fn len(&self) -> usize {
        self.len + self.spill.len()
    }

    /// True when no entries are mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Iterates the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Pci, CellId)> + '_ {
        self.inline[..self.len].iter().chain(self.spill.iter()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::{Carrier, Environment};
    use crate::ho::Arch;
    use fiveg_geo::routes;

    fn deployment(arch: Arch) -> Deployment {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 12_000.0);
        Deployment::generate(&route, Carrier::OpX, Environment::Freeway, arch, 17)
    }

    #[test]
    fn snapshot_matches_strongest_exactly() {
        let d = deployment(Arch::Nsa);
        let mut snap = RadioSnapshot::new();
        // drive along the route so the channel caches hit and miss
        for i in 0..300 {
            let pos = Point::new(i as f64 * 35.0, 20.0);
            let t = i as f64 * 0.1;
            snap.refresh(&d, &pos, t, 8000.0, true, true);
            for nr in [false, true] {
                assert_eq!(snap.strongest(nr), d.strongest(&pos, t, nr, 8000.0), "step {i} nr={nr}");
            }
        }
    }

    #[test]
    fn snapshot_rx_lookup_matches_direct_eval() {
        let d = deployment(Arch::Nsa);
        let mut snap = RadioSnapshot::new();
        let pos = Point::new(4000.0, -15.0);
        snap.refresh(&d, &pos, 7.5, 8000.0, true, true);
        for c in &d.cells {
            assert_eq!(snap.rx_dbm(&d, c.id), c.rx_dbm(&pos, 7.5), "cell {:?}", c.id);
        }
    }

    #[test]
    fn unwanted_legs_stay_empty() {
        let d = deployment(Arch::Nsa);
        let mut snap = RadioSnapshot::new();
        let pos = Point::new(2000.0, 0.0);
        snap.refresh(&d, &pos, 1.0, 8000.0, false, true);
        assert!(snap.strongest(false).is_empty());
        assert!(!snap.strongest(true).is_empty());
        // an out-of-table cell still evaluates (bit-identically)
        let lte = d.lte_cells()[0];
        assert_eq!(snap.rx_dbm(&d, lte), d.cell(lte).rx_dbm(&pos, 1.0));
    }

    #[test]
    fn pci_table_first_writer_wins() {
        let mut t = PciTable::new();
        t.insert_first(Pci(5), CellId(1));
        t.insert_first(Pci(5), CellId(2));
        t.insert_first(Pci(9), CellId(3));
        assert_eq!(t.get(Pci(5)), Some(CellId(1)));
        assert_eq!(t.get(Pci(9)), Some(CellId(3)));
        assert_eq!(t.get(Pci(7)), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(Pci(5), CellId(1)), (Pci(9), CellId(3))]);
    }

    #[test]
    fn pci_table_spills_past_inline_capacity() {
        let mut t = PciTable::new();
        for i in 0..100u16 {
            t.insert_first(Pci(i), CellId(i as u32));
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u16 {
            assert_eq!(t.get(Pci(i)), Some(CellId(i as u32)), "pci {i}");
        }
        // duplicate insert into the spill region is still first-writer-wins
        t.insert_first(Pci(99), CellId(4242));
        assert_eq!(t.get(Pci(99)), Some(CellId(99)));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(Pci(0)), None);
    }
}
