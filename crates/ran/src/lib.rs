//! Radio access network model: cells, deployments, measurement engine,
//! carrier handover policies and the handover state machines of Table 2.
//!
//! This crate is the network side of the study. It owns:
//!
//! * [`ho`] — the HO taxonomy (Table 2): SCGA/SCGR/SCGM/SCGC/MNBH/MCGH/LTEH,
//!   their access-technology changes and 4G/5G categories.
//! * [`carrier`] — the three carriers (OpX, OpY, OpZ) and their band
//!   portfolios, architectures and deployment parameters.
//! * [`cell`] — cells, towers and PCIs.
//! * [`deploy`] — the deployment generator: places eNB/gNB towers along a
//!   route per carrier profile (inter-site distances derived from the
//!   propagation model per band), handles eNB/gNB co-location and the
//!   same-PCI convention the paper's §6.3 heuristic relies on.
//! * [`measure`] — the UE-side measurement engine: evaluates the events of
//!   Table 4 with hysteresis and time-to-trigger against live RRS.
//! * [`policy`] — the carrier's "black-box" HO decision logic (§7.1): rule
//!   tables mapping measurement-report sequences to HO commands; this is
//!   exactly what Prognos learns from the outside.
//! * [`snapshot`] — the per-tick radio snapshot and scratch structures the
//!   simulator's hot path reads instead of re-scanning the deployment.
//! * [`stages`] — the T1 (preparation) / T2 (execution) duration model
//!   (§5.2), including the co-location discount of Fig. 13.
//! * [`state`] — the per-UE connection state machine executing HO commands
//!   and producing [`state::HandoverRecord`]s.

pub mod carrier;
pub mod cell;
pub mod deploy;
pub mod ho;
pub mod measure;
pub mod policy;
pub mod snapshot;
pub mod stages;
pub mod state;

pub use carrier::{Carrier, CarrierProfile, Environment};
pub use cell::{Cell, CellId, Tower, TowerId};
pub use deploy::Deployment;
pub use ho::{Arch, HoCategory, HoType, RadioTech};
pub use measure::{MeasEngine, Measurement};
pub use policy::{HoDecision, HoPolicy};
pub use snapshot::{PciTable, RadioSnapshot};
pub use stages::{StageModel, StageSample};
pub use state::{BearerMode, ConnectionState, HandoverRecord, HoEvent, HoPhase, RanStateMachine};
