//! UE-side measurement engine: Table 4 events with hysteresis and TTT.
//!
//! "If any event trigger criterion is met, a measurement event is raised and
//! its report is sent to the primary cell." (§2) The engine tracks, per
//! configured event, how long the entry condition has held; once it holds
//! for the event's time-to-trigger, a report fires. After firing, the event
//! re-arms only after the condition clears (leaving condition), matching
//! 3GPP's report-on-entry semantics.

use fiveg_radio::Rrs;
use fiveg_rrc::{EventConfig, EventKind, MeasEvent, MeasQuantity, NeighborMeas, Pci};
use serde::{Deserialize, Serialize};

/// One cell's measurement as fed to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Cell identity.
    pub pci: Pci,
    /// Measured triple.
    pub rrs: Rrs,
    /// Carrier frequency of the measured cell, MHz. Intra-frequency events
    /// (A3/A6) only compare cells on the serving frequency, per 3GPP
    /// measObject semantics.
    pub freq_mhz: f64,
    /// Measurement-object group: NR-A3 is configured per gNB (the tower id
    /// here), so cross-gNB cells never satisfy it — "NSA 5G does not have an
    /// option to perform a direct HO between two gNBs". `None` disables the
    /// grouping (LTE cells).
    pub group: Option<u32>,
}

impl Measurement {
    /// Selects the quantity an event compares.
    pub fn quantity(&self, q: MeasQuantity) -> f64 {
        match q {
            MeasQuantity::Rsrp => self.rrs.rsrp_dbm,
            MeasQuantity::Rsrq => self.rrs.rsrq_db,
            MeasQuantity::Sinr => self.rrs.sinr_db,
        }
    }
}

/// A fired measurement report, ready to be wrapped in an
/// [`fiveg_rrc::RrcMessage::MeasurementReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggeredReport {
    /// The event that fired.
    pub event: MeasEvent,
    /// Serving cell at fire time.
    pub serving: Measurement,
    /// The neighbor that satisfied the condition (strongest first for
    /// conditions that don't name one).
    pub neighbors: Vec<NeighborMeas>,
    /// Simulation time (s) the report fired.
    pub t: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ArmState {
    /// Condition not met; TTT clock not running.
    Idle,
    /// Condition met since this time; waiting out the TTT.
    Pending(f64),
    /// Report fired; waiting for the leaving condition to re-arm.
    Fired,
}

/// Measurement engine for one radio leg (LTE or NR measurements).
///
/// An NSA UE runs two engines: one over LTE measurements for the MCG, one
/// over NR measurements for the SCG.
#[derive(Debug, Clone)]
pub struct MeasEngine {
    configs: Vec<EventConfig>,
    states: Vec<ArmState>,
}

impl MeasEngine {
    /// Creates an engine armed with `configs`.
    pub fn new(configs: Vec<EventConfig>) -> Self {
        let states = vec![ArmState::Idle; configs.len()];
        Self { configs, states }
    }

    /// Replaces the configuration (a new `MeasConfig` arrived after a HO);
    /// all trigger state resets.
    pub fn reconfigure(&mut self, configs: Vec<EventConfig>) {
        self.states = vec![ArmState::Idle; configs.len()];
        self.configs = configs;
    }

    /// The active configuration.
    pub fn configs(&self) -> &[EventConfig] {
        &self.configs
    }

    /// Clears all pending/fired state (used after a HO executes: the new
    /// serving cell re-delivers measurement configs).
    pub fn reset(&mut self) {
        for s in &mut self.states {
            *s = ArmState::Idle;
        }
    }

    /// Re-arms the events of one kind (e.g. the network re-requests B1
    /// reporting after an A2 opened an SCG-change window).
    pub fn rearm(&mut self, kind: EventKind) {
        for (cfg, s) in self.configs.iter().zip(self.states.iter_mut()) {
            if cfg.event.kind == kind {
                *s = ArmState::Idle;
            }
        }
    }

    /// True when every configured event is disarmed: no TTT clock running,
    /// nothing fired and waiting to leave. An all-idle engine whose entry
    /// conditions stay unmet is inert — stepping it mutates nothing — which
    /// is the precondition event-driven schedulers need before parking a UE.
    pub fn all_idle(&self) -> bool {
        self.states.iter().all(|s| *s == ArmState::Idle)
    }

    /// Per-leg margin to the nearest entry threshold, dB: the minimum
    /// [`EventConfig::entry_margin_db`] over all configured events, each
    /// evaluated against the same best-neighbor selection `step` uses.
    /// Negative when some entry condition currently holds; `+∞` with no
    /// configs (or only periodic ones). Lets wakeup bounds reuse the rx
    /// deltas this engine already computes instead of re-deriving them.
    pub fn min_entry_margin_db(&self, serving: &Measurement, neighbors: &[Measurement]) -> f64 {
        self.configs
            .iter()
            .map(|cfg| {
                let best = best_neighbor(cfg, serving, neighbors);
                let s_val = serving.quantity(cfg.quantity);
                let n_val = best.map(|n| n.quantity(cfg.quantity)).unwrap_or(-140.0);
                cfg.entry_margin_db(s_val, n_val)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Advances the engine to time `t` with the current measurements.
    ///
    /// `serving` is the serving cell of this leg; `neighbors` the measurable
    /// neighbor cells (any order). Returns reports that fire at this tick.
    pub fn step(&mut self, t: f64, serving: &Measurement, neighbors: &[Measurement]) -> Vec<TriggeredReport> {
        let mut out = Vec::new();
        for (cfg, st) in self.configs.iter().zip(self.states.iter_mut()) {
            // Find the neighbor that best satisfies this event.
            let best = best_neighbor(cfg, serving, neighbors);
            let s_val = serving.quantity(cfg.quantity);
            let n_val = best.map(|n| n.quantity(cfg.quantity)).unwrap_or(-140.0);
            let entered = cfg.entered(s_val, n_val);
            let left = cfg.left(s_val, n_val);
            match *st {
                ArmState::Idle => {
                    if entered {
                        if cfg.ttt_ms == 0 {
                            *st = ArmState::Fired;
                            out.push(make_report(cfg, serving, best, neighbors, t));
                        } else {
                            *st = ArmState::Pending(t);
                        }
                    }
                }
                ArmState::Pending(since) => {
                    if !entered {
                        // condition broke before TTT elapsed
                        *st = ArmState::Idle;
                    } else if (t - since) * 1000.0 + 1e-9 >= cfg.ttt_ms as f64 {
                        *st = ArmState::Fired;
                        out.push(make_report(cfg, serving, best, neighbors, t));
                    }
                }
                ArmState::Fired => {
                    if left {
                        *st = ArmState::Idle;
                    }
                }
            }
        }
        out
    }
}

/// Picks the neighbor that maximizes the event's chance of triggering:
/// strongest neighbor in the event's quantity.
fn best_neighbor<'a>(
    cfg: &EventConfig,
    serving: &Measurement,
    neighbors: &'a [Measurement],
) -> Option<&'a Measurement> {
    if matches!(cfg.event.kind, EventKind::A1 | EventKind::A2 | EventKind::Periodic) {
        return None;
    }
    // A3/A6 are intra-frequency: only the serving carrier's cells compete;
    // when the serving cell carries a measurement-object group (NR under
    // NSA: the gNB), only same-group cells are configured.
    let intra = matches!(cfg.event.kind, EventKind::A3);
    let candidates = neighbors
        .iter()
        .filter(|n| !intra || (n.freq_mhz - serving.freq_mhz).abs() < 1.0)
        .filter(|n| !intra || serving.group.is_none() || n.group == serving.group);
    if matches!(cfg.event.kind, EventKind::A4 | EventKind::B1) {
        // Threshold events fire for the cell that *crossed* the threshold —
        // typically the marginal one, not the strongest. This is the §6.2
        // mechanism: each HO leg optimizes its local criterion only, so an
        // SCG Change often lands on a barely-adequate gNB.
        let satisfying = candidates
            .clone()
            .filter(|n| n.quantity(cfg.quantity) - cfg.hysteresis_db > cfg.threshold_dbm)
            .min_by(|a, b| a.quantity(cfg.quantity).partial_cmp(&b.quantity(cfg.quantity)).unwrap());
        if satisfying.is_some() {
            return satisfying;
        }
    }
    candidates.max_by(|a, b| a.quantity(cfg.quantity).partial_cmp(&b.quantity(cfg.quantity)).unwrap())
}

fn make_report(
    cfg: &EventConfig,
    serving: &Measurement,
    best: Option<&Measurement>,
    neighbors: &[Measurement],
    t: f64,
) -> TriggeredReport {
    // Serving-only events (A1/A2) report no neighbors; otherwise report the
    // satisfying neighbor first, then other detectable ones for context.
    let mut ns: Vec<NeighborMeas> = Vec::new();
    if let Some(b) = best {
        ns.push(NeighborMeas { pci: b.pci, rrs: b.rrs });
        for n in neighbors {
            if n.pci != b.pci && n.rrs.detectable() && ns.len() < 4 {
                ns.push(NeighborMeas { pci: n.pci, rrs: n.rrs });
            }
        }
    }
    TriggeredReport { event: cfg.event, serving: *serving, neighbors: ns, t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_rrc::MeasEvent;

    fn meas(pci: u16, rsrp: f64) -> Measurement {
        Measurement {
            pci: Pci(pci),
            rrs: Rrs { rsrp_dbm: rsrp, rsrq_db: -10.0, sinr_db: 10.0 },
            freq_mhz: 1960.0,
            group: None,
        }
    }

    fn a3_engine(ttt_ms: u32) -> MeasEngine {
        let mut cfg = EventConfig::typical(MeasEvent::lte(EventKind::A3));
        cfg.ttt_ms = ttt_ms;
        MeasEngine::new(vec![cfg])
    }

    #[test]
    fn fires_after_ttt() {
        let mut e = a3_engine(200);
        let serving = meas(1, -100.0);
        let better = [meas(2, -90.0)];
        // t=0: condition enters, pending
        assert!(e.step(0.0, &serving, &better).is_empty());
        // t=0.1: still pending (100ms < 200ms)
        assert!(e.step(0.1, &serving, &better).is_empty());
        // t=0.2: TTT elapsed -> fire
        let r = e.step(0.2, &serving, &better);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].event.kind, EventKind::A3);
        assert_eq!(r[0].neighbors[0].pci, Pci(2));
    }

    #[test]
    fn condition_break_resets_ttt() {
        let mut e = a3_engine(200);
        let serving = meas(1, -100.0);
        assert!(e.step(0.0, &serving, &[meas(2, -90.0)]).is_empty());
        // neighbor fades before TTT
        assert!(e.step(0.1, &serving, &[meas(2, -101.0)]).is_empty());
        // re-enters: clock restarts
        assert!(e.step(0.15, &serving, &[meas(2, -90.0)]).is_empty());
        assert!(e.step(0.30, &serving, &[meas(2, -90.0)]).is_empty());
        let r = e.step(0.35, &serving, &[meas(2, -90.0)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn does_not_refire_until_left() {
        let mut e = a3_engine(0);
        let serving = meas(1, -100.0);
        let better = [meas(2, -90.0)];
        assert_eq!(e.step(0.0, &serving, &better).len(), 1);
        // condition still true: no duplicate report
        assert!(e.step(0.05, &serving, &better).is_empty());
        assert!(e.step(0.10, &serving, &better).is_empty());
        // leaves, then re-enters: fires again
        assert!(e.step(0.15, &serving, &[meas(2, -110.0)]).is_empty());
        assert_eq!(e.step(0.20, &serving, &better).len(), 1);
    }

    #[test]
    fn zero_ttt_fires_immediately() {
        let mut e = a3_engine(0);
        let r = e.step(0.0, &meas(1, -100.0), &[meas(2, -90.0)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn a2_ignores_neighbors() {
        let mut cfg = EventConfig::typical(MeasEvent::nr(EventKind::A2));
        cfg.ttt_ms = 0;
        let mut e = MeasEngine::new(vec![cfg]);
        // serving below -115 threshold fires regardless of strong neighbor
        let r = e.step(0.0, &meas(1, -120.0), &[meas(2, -50.0)]);
        assert_eq!(r.len(), 1);
        assert!(r[0].neighbors.is_empty());
    }

    #[test]
    fn picks_strongest_neighbor() {
        let mut e = a3_engine(0);
        let r = e.step(0.0, &meas(1, -100.0), &[meas(2, -92.0), meas(3, -88.0), meas(4, -95.0)]);
        assert_eq!(r[0].neighbors[0].pci, Pci(3));
    }

    #[test]
    fn all_idle_tracks_arm_states() {
        let mut e = a3_engine(200);
        let serving = meas(1, -100.0);
        assert!(e.all_idle());
        e.step(0.0, &serving, &[meas(2, -90.0)]); // enters -> Pending
        assert!(!e.all_idle());
        e.step(0.1, &serving, &[meas(2, -110.0)]); // breaks -> Idle
        assert!(e.all_idle());
        e.step(0.2, &serving, &[meas(2, -90.0)]);
        e.step(0.4, &serving, &[meas(2, -90.0)]); // TTT elapsed -> Fired
        assert!(!e.all_idle());
        e.reset();
        assert!(e.all_idle());
    }

    #[test]
    fn margin_sign_predicts_whether_step_arms() {
        // margin > 0 must mean a step from Idle stays Idle; margin < 0 that
        // the event arms (fires at ttt 0) — across neighbor strengths
        for rsrp_n in [-130.0, -105.0, -96.0, -90.0] {
            let mut e = a3_engine(0);
            let serving = meas(1, -100.0);
            let neighbors = [meas(2, rsrp_n)];
            let margin = e.min_entry_margin_db(&serving, &neighbors);
            let fired = !e.step(0.0, &serving, &neighbors).is_empty();
            assert_eq!(margin < 0.0, fired, "margin {margin} vs fired {fired} at n={rsrp_n}");
        }
    }

    #[test]
    fn margin_is_infinite_without_configs() {
        let e = MeasEngine::new(vec![]);
        assert!(e.all_idle());
        assert_eq!(e.min_entry_margin_db(&meas(1, -100.0), &[]), f64::INFINITY);
    }

    #[test]
    fn reset_clears_fired_state() {
        let mut e = a3_engine(0);
        let serving = meas(1, -100.0);
        let better = [meas(2, -90.0)];
        assert_eq!(e.step(0.0, &serving, &better).len(), 1);
        e.reset();
        // fires again after reset even though condition never left
        assert_eq!(e.step(0.1, &serving, &better).len(), 1);
    }

    #[test]
    fn reconfigure_replaces_events() {
        let mut e = a3_engine(0);
        let mut b1 = EventConfig::typical(MeasEvent::nr(EventKind::B1));
        b1.ttt_ms = 0;
        e.reconfigure(vec![b1]);
        let r = e.step(0.0, &meas(1, -120.0), &[meas(2, -100.0)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].event.kind, EventKind::B1);
    }

    #[test]
    fn multiple_events_fire_independently() {
        let mut a2 = EventConfig::typical(MeasEvent::lte(EventKind::A2));
        a2.ttt_ms = 0;
        let mut a3 = EventConfig::typical(MeasEvent::lte(EventKind::A3));
        a3.ttt_ms = 0;
        let mut e = MeasEngine::new(vec![a2, a3]);
        // weak serving + much stronger neighbor: both fire
        let r = e.step(0.0, &meas(1, -120.0), &[meas(2, -100.0)]);
        assert_eq!(r.len(), 2);
    }
}
