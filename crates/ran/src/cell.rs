//! Cells and towers.
//!
//! "Cellular towers can manage multiple cells (antennas), each of which
//! covers a geographical area. PCI is the identifier used for cells at the
//! physical layer." (§2)

use fiveg_geo::Point;
use fiveg_radio::{Band, ChannelCache, NodeCache, Propagation, NOISE_FLOOR_DBM};
use fiveg_rrc::Pci;
use serde::{Deserialize, Serialize};

/// Dense index of a cell within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Dense index of a physical tower within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TowerId(pub u32);

/// One cell (antenna) of a tower.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Deployment-wide identity.
    pub id: CellId,
    /// Physical-layer identity reported to the UE.
    pub pci: Pci,
    /// Carrier band (decides LTE vs NR and the band class).
    pub band: Band,
    /// The hosting tower.
    pub tower: TowerId,
    /// Antenna position (the tower's position).
    pub site: Point,
    /// Sector boresight in radians (ccw from east); `None` = omni.
    /// Multi-sector towers separate their co-channel sectors with the
    /// antenna pattern — without it co-sited sectors would interfere at
    /// ~0 dB SINR, which real deployments never exhibit.
    pub azimuth: Option<f64>,
    /// The stochastic channel from this cell to any UE position/time.
    pub propagation: Propagation,
    /// Receiver noise floor over this cell's bandwidth, dBm — precomputed at
    /// deployment-generation time (see [`Cell::noise_floor_dbm`]) so the
    /// per-tick RRS path skips the log-bandwidth term.
    pub noise_dbm: f64,
}

/// 3GPP-style sector-pattern half-power beamwidth, radians (65°).
const SECTOR_BEAMWIDTH: f64 = 65.0 * std::f64::consts::PI / 180.0;
/// Front-to-back attenuation limit, dB.
const SECTOR_MAX_ATT: f64 = 22.0;

impl Cell {
    /// True for 5G-NR cells (gNB-managed).
    pub fn is_nr(&self) -> bool {
        self.band.is_nr()
    }

    /// Directional antenna-pattern loss toward `ue`, dB (0 for omni cells).
    pub fn pattern_loss_db(&self, ue: &Point) -> f64 {
        match self.azimuth {
            None => 0.0,
            Some(boresight) => {
                let bearing = self.site.bearing(ue);
                let mut delta = (bearing - boresight).abs() % std::f64::consts::TAU;
                if delta > std::f64::consts::PI {
                    delta = std::f64::consts::TAU - delta;
                }
                (12.0 * (delta / SECTOR_BEAMWIDTH).powi(2)).min(SECTOR_MAX_ATT)
            }
        }
    }

    /// `(min, max)` of [`Cell::pattern_loss_db`] over every position within
    /// `reach_m` meters of `ue` (0 for omni cells).
    ///
    /// The bearing from the site to any point of the disc deviates from the
    /// bearing to its center by at most `asin(reach / dist)` — the half-angle
    /// of the tangent cone — so the off-boresight angle `delta` ranges over
    /// `[delta0 - dtheta, delta0 + dtheta]` clipped to `[0, pi]`, and the
    /// pattern loss (monotone in `delta`) over the cone endpoints. When the
    /// disc contains the site the cone is the full circle and the bounds
    /// degrade to `[0, SECTOR_MAX_ATT]`.
    pub fn pattern_loss_bounds(&self, ue: &Point, reach_m: f64) -> (f64, f64) {
        let boresight = match self.azimuth {
            None => return (0.0, 0.0),
            Some(b) => b,
        };
        let dist = self.site.distance(ue);
        if reach_m >= dist {
            return (0.0, SECTOR_MAX_ATT);
        }
        let dtheta = (reach_m / dist).asin();
        let bearing = self.site.bearing(ue);
        let mut delta0 = (bearing - boresight).abs() % std::f64::consts::TAU;
        if delta0 > std::f64::consts::PI {
            delta0 = std::f64::consts::TAU - delta0;
        }
        let d_lo = (delta0 - dtheta).max(0.0);
        let d_hi = (delta0 + dtheta).min(std::f64::consts::PI);
        let loss = |d: f64| (12.0 * (d / SECTOR_BEAMWIDTH).powi(2)).min(SECTOR_MAX_ATT);
        (loss(d_lo), loss(d_hi))
    }

    /// Received power at `ue` and time `t`, in dBm.
    pub fn rx_dbm(&self, ue: &Point, t: f64) -> f64 {
        self.propagation.received_dbm(&self.site, ue, t) - self.pattern_loss_db(ue)
    }

    /// [`Cell::rx_dbm`] with the channel's noise-lattice hashes memoized in
    /// `cache` — bit-identical; `cache` must be dedicated to this cell.
    pub fn rx_dbm_cached(&self, ue: &Point, t: f64, cache: &mut ChannelCache) -> f64 {
        self.propagation.received_dbm_cached(&self.site, ue, t, cache) - self.pattern_loss_db(ue)
    }

    /// [`Cell::rx_dbm_cached`] with the fast-fading node gaussians also
    /// memoized in `nodes` — bit-identical; both memos must be dedicated to
    /// this cell.
    pub fn rx_dbm_memo(&self, ue: &Point, t: f64, cache: &mut ChannelCache, nodes: &mut NodeCache) -> f64 {
        self.propagation.received_dbm_memo(&self.site, ue, t, cache, nodes) - self.pattern_loss_db(ue)
    }

    /// UE noise floor for a channel of `band`'s bandwidth, dBm: the ~20 MHz
    /// reference floor scaled by `10 log10(bw / 20)`.
    pub fn noise_floor_dbm(band: Band) -> f64 {
        NOISE_FLOOR_DBM + 10.0 * (band.bandwidth_mhz / 20.0).log10()
    }
}

/// A physical tower hosting one or more cells.
///
/// NSA towers may host both an eNB (LTE cells) and a gNB (NR cells) — the
/// "co-located" case of §6.3 — or only one of the two.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tower {
    /// Deployment-wide identity.
    pub id: TowerId,
    /// Ground position.
    pub pos: Point,
    /// Cells hosted here.
    pub cells: Vec<CellId>,
    /// True when this tower hosts both eNB and gNB hardware.
    pub co_located: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_radio::band::catalog::{B2, N71};

    fn cell(band: Band) -> Cell {
        Cell {
            id: CellId(0),
            pci: Pci(100),
            band,
            tower: TowerId(0),
            site: Point::ORIGIN,
            azimuth: None,
            propagation: Propagation::new(1, band, 46.0),
            noise_dbm: Cell::noise_floor_dbm(band),
        }
    }

    #[test]
    fn nr_detection() {
        assert!(cell(N71).is_nr());
        assert!(!cell(B2).is_nr());
    }

    #[test]
    fn rx_declines_with_distance() {
        let c = cell(N71);
        let near = c.rx_dbm(&Point::new(100.0, 0.0), 0.0);
        let far = c.rx_dbm(&Point::new(5000.0, 0.0), 0.0);
        assert!(near > far);
    }

    #[test]
    fn sector_pattern_separates_directions() {
        let mut c = cell(N71);
        c.azimuth = Some(0.0); // pointing east
        let front = Point::new(500.0, 0.0);
        let back = Point::new(-500.0, 0.0);
        let side = Point::new(0.0, 500.0);
        assert_eq!(c.pattern_loss_db(&front), 0.0);
        assert_eq!(c.pattern_loss_db(&back), 22.0);
        let s = c.pattern_loss_db(&side);
        assert!(s > 5.0 && s <= 22.0, "{s}");
        // rx applies the pattern: same point with/without azimuth differs
        // by exactly the pattern loss (channel draws are identical)
        let mut omni = c.clone();
        omni.azimuth = None;
        assert!((omni.rx_dbm(&back, 0.0) - c.rx_dbm(&back, 0.0) - 22.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_bounds_cover_every_disc_position() {
        let mut c = cell(N71);
        c.azimuth = Some(1.1);
        for k in 0..80 {
            let ue = Point::new((k as f64 * 0.41).cos() * 900.0, (k as f64 * 0.73).sin() * 900.0 + 50.0);
            let reach = 5.0 + (k % 11) as f64 * 30.0;
            let (lo, hi) = c.pattern_loss_bounds(&ue, reach);
            assert!(lo <= hi);
            for i in 0..24 {
                let (th, r) = (i as f64 * 0.9, (i % 4) as f64 / 3.0 * reach);
                let q = Point::new(ue.x + r * th.cos(), ue.y + r * th.sin());
                let l = c.pattern_loss_db(&q);
                assert!(l >= lo - 1e-9 && l <= hi + 1e-9, "loss {l} outside [{lo}, {hi}] (k={k}, i={i})");
            }
        }
        // omni stays exactly zero
        c.azimuth = None;
        assert_eq!(c.pattern_loss_bounds(&Point::new(100.0, 0.0), 50.0), (0.0, 0.0));
    }

    #[test]
    fn omni_has_no_pattern_loss() {
        let c = cell(B2);
        assert_eq!(c.pattern_loss_db(&Point::new(-100.0, 37.0)), 0.0);
    }

    use fiveg_radio::Band;
}
