//! Deployment generator: lays out a carrier's RAN along a route.
//!
//! The paper could not know tower locations and estimated coverage from PCI
//! dwell distance (§6.1); the simulator inverts that: it *places* towers with
//! per-band-class inter-site distances (ISDs) chosen so the resulting dwell
//! distances land in the measured regime (low-band km-scale, mmWave
//! 100 m-scale), then everything downstream — HO frequency, coverage
//! estimates, co-location statistics — is measured off the generated layout
//! exactly the way the paper measures it off the real one.
//!
//! Key modelled facts:
//!
//! * the NSA anchor (NSA-4C) runs on an LTE **mid-band** carrier with a much
//!   smaller ISD than low-band NR (§6.1's effective-coverage reduction);
//! * a fraction of gNB sites are **co-located** with eNB towers, in which
//!   case the NR cell reuses the eNB cell's PCI (§6.3's heuristic);
//! * mmWave and mid-band NR towers host multiple sector cells (SCGM exists);
//! * bearer mode (dual vs 5G-only) is a property of the area (§4.2).

use crate::carrier::{Carrier, Environment};
use crate::cell::{Cell, CellId, Tower, TowerId};
use crate::ho::Arch;
use fiveg_geo::{Point, Polyline};
use fiveg_radio::{hash2, Band, BandClass, DetRng, Propagation, SpatialNoise};
use fiveg_rrc::Pci;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Inter-site distances in meters per (environment, band role).
#[derive(Debug, Clone, Copy)]
pub struct IsdPlan {
    /// LTE anchor (mid-band) towers.
    pub lte_anchor: f64,
    /// Other LTE band layers.
    pub lte_other: f64,
    /// NR low-band gNBs.
    pub nr_low: f64,
    /// NR mid-band gNBs.
    pub nr_mid: f64,
    /// NR mmWave gNBs.
    pub nr_mmwave: f64,
}

impl IsdPlan {
    /// ISDs for an environment, tuned to the paper's dwell distances.
    pub fn for_env(env: Environment) -> Self {
        match env {
            Environment::UrbanDense => {
                IsdPlan { lte_anchor: 650.0, lte_other: 800.0, nr_low: 1600.0, nr_mid: 800.0, nr_mmwave: 210.0 }
            }
            Environment::Urban => {
                IsdPlan { lte_anchor: 800.0, lte_other: 950.0, nr_low: 1800.0, nr_mid: 850.0, nr_mmwave: 230.0 }
            }
            Environment::Freeway => {
                IsdPlan { lte_anchor: 1150.0, lte_other: 1350.0, nr_low: 2300.0, nr_mid: 1200.0, nr_mmwave: 250.0 }
            }
        }
    }
}

/// Grid cell size for the spatial index, meters.
const GRID: f64 = 1000.0;

/// Dense spatial index over cell sites: fixed-pitch square bins covering the
/// deployment's bounding box, stored row-major. Replaces a `HashMap` keyed on
/// grid coordinates — a radius scan touches a few hundred bins, and a direct
/// index beats a hash probe per bin on the per-tick hot path.
#[derive(Debug, Clone, Default)]
struct GridIndex {
    /// Grid coordinate of the first bin (inclusive).
    x0: i64,
    y0: i64,
    /// Bin-count extents; zero for an empty deployment.
    w: i64,
    h: i64,
    /// Row-major bins: ids in insertion (= `CellId`) order within each bin.
    bins: Vec<Vec<CellId>>,
}

impl GridIndex {
    /// Builds the index from the final cell list.
    fn build(cells: &[Cell]) -> Self {
        let keys: Vec<(i64, i64)> =
            cells.iter().map(|c| ((c.site.x / GRID).floor() as i64, (c.site.y / GRID).floor() as i64)).collect();
        let Some(&(kx0, ky0)) = keys.first() else {
            return GridIndex::default();
        };
        let (mut x0, mut y0, mut x1, mut y1) = (kx0, ky0, kx0, ky0);
        for &(kx, ky) in &keys {
            x0 = x0.min(kx);
            y0 = y0.min(ky);
            x1 = x1.max(kx);
            y1 = y1.max(ky);
        }
        let (w, h) = (x1 - x0 + 1, y1 - y0 + 1);
        let mut bins = vec![Vec::new(); (w * h) as usize];
        for (cell, &(kx, ky)) in cells.iter().zip(&keys) {
            bins[((ky - y0) * w + (kx - x0)) as usize].push(cell.id);
        }
        GridIndex { x0, y0, w, h, bins }
    }

    /// The bin at grid coordinate `(kx, ky)`, empty when out of range.
    #[inline]
    fn bin(&self, kx: i64, ky: i64) -> &[CellId] {
        let (gx, gy) = (kx - self.x0, ky - self.y0);
        if gx < 0 || gx >= self.w || gy < 0 || gy >= self.h {
            return &[];
        }
        &self.bins[(gy * self.w + gx) as usize]
    }
}

/// The deployment-wide total order on `(cell, rx_dbm)` pairs: received power
/// descending, then [`CellId`] ascending. Unlike a raw float comparison this
/// is total — equal-rx cells can never reorder across platforms, refactors,
/// or unstable sorts.
pub fn rx_total_order(a: &(CellId, f64), b: &(CellId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// A generated radio access network for one carrier over one route.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The carrier this RAN belongs to.
    pub carrier: Carrier,
    /// The environment it was generated for.
    pub env: Environment,
    /// Service architecture available in this area.
    pub arch: Arch,
    /// All towers.
    pub towers: Vec<Tower>,
    /// All cells.
    pub cells: Vec<Cell>,
    lte_ids: Vec<CellId>,
    nr_ids: Vec<CellId>,
    /// Spatial index over cell sites, built once generation is complete.
    grid: GridIndex,
    /// gNB tower → associated eNB tower (X2 peer; same tower if co-located).
    gnb_assoc: HashMap<TowerId, TowerId>,
    /// Bearer-mode field: dual-mode where the field is below the carrier's
    /// dual fraction.
    bearer_field: SpatialNoise,
    dual_fraction: f64,
    /// Per-cell noise suprema for the sleep planner's O(1) screen, computed
    /// lazily on first use (single-UE runs and NSA fleets never pay for it)
    /// and shared across clones — the table is a pure function of the cells.
    planner_sup: Arc<OnceLock<NoiseSup>>,
}

/// Lazily-built planner screen: for each cell, a sound upper bound on its
/// channel's stochastic terms anywhere in the deployment's padded bounding
/// rectangle — see [`Deployment::noise_sup_db`].
#[derive(Debug)]
struct NoiseSup {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    sup_db: Vec<f64>,
}

impl Deployment {
    /// Generates a deployment along `route` for `carrier` in `env` under
    /// `arch`, deterministically from `seed`.
    pub fn generate(route: &Polyline, carrier: Carrier, env: Environment, arch: Arch, seed: u64) -> Self {
        let profile = carrier.profile();
        let isd = IsdPlan::for_env(env);
        let mut rng = DetRng::new(hash2(seed, 0xDE50));
        let mut d = Deployment {
            carrier,
            env,
            arch,
            towers: Vec::new(),
            cells: Vec::new(),
            lte_ids: Vec::new(),
            nr_ids: Vec::new(),
            grid: GridIndex::default(),
            gnb_assoc: HashMap::new(),
            bearer_field: SpatialNoise::new(hash2(seed, 0xBEAE), 3000.0, 1.0),
            dual_fraction: profile.dual_mode_fraction,
            planner_sup: Arc::new(OnceLock::new()),
        };

        let mut lte_pci = 11u16;
        let mut nr_pci = 520u16;

        // --- LTE layer(s): anchor band towers first, they define the grid
        // other LTE bands ride on (real towers carry several bands).
        let lte_bands = profile.lte_bands_in(env);
        let anchor_positions = d.place_towers(route, isd.lte_anchor, 0.0, &mut rng);
        let mut anchor_tower_ids = Vec::new();
        for pos in &anchor_positions {
            let tid = d.new_tower(*pos, false);
            anchor_tower_ids.push(tid);
            // real eNBs are 3-sector: driving past a tower crosses sector
            // boundaries, which is why measured LTE HO distances are well
            // below the inter-site distance
            let azimuth_base = rng.range(0.0, std::f64::consts::TAU);
            for sct in 0..3 {
                let az = azimuth_base + sct as f64 * std::f64::consts::TAU / 3.0;
                d.new_cell(tid, profile.anchor_band, &mut lte_pci, &mut nr_pci, seed, Some(az));
            }
            // a couple of secondary LTE bands per tower, also sectorized
            // (coverage bands ride the same macro towers in practice)
            for (k, band) in lte_bands.iter().enumerate() {
                if *band == profile.anchor_band {
                    continue;
                }
                // each tower carries ~2 extra LTE bands, rotating through the list
                if (k + d.towers.len()) % lte_bands.len().max(1) < 2 {
                    for sct in 0..3 {
                        let az = azimuth_base + sct as f64 * std::f64::consts::TAU / 3.0;
                        d.new_cell(tid, *band, &mut lte_pci, &mut nr_pci, seed, Some(az));
                    }
                }
            }
        }
        // staggered second LTE layer (other bands on their own towers),
        // giving the denser 4G HO pattern observed on drives
        if lte_bands.len() > 1 {
            let other_positions = d.place_towers(route, isd.lte_other, 0.5, &mut rng);
            for pos in &other_positions {
                let tid = d.new_tower(*pos, false);
                let band = lte_bands[(d.towers.len() * 7 + 3) % lte_bands.len()];
                let azimuth_base = rng.range(0.0, std::f64::consts::TAU);
                for sct in 0..3 {
                    let az = azimuth_base + sct as f64 * std::f64::consts::TAU / 3.0;
                    d.new_cell(tid, band, &mut lte_pci, &mut nr_pci, seed, Some(az));
                }
            }
        }

        if arch == Arch::Lte {
            d.grid = GridIndex::build(&d.cells);
            return d;
        }

        // --- NR layers.
        let nr_bands = profile.nr_bands_in(env);
        for band in nr_bands {
            let (band_isd, sectors) = match band.class() {
                BandClass::Low => (isd.nr_low, 2usize),
                BandClass::Mid => (isd.nr_mid, 2usize),
                BandClass::MmWave => (isd.nr_mmwave, 3usize),
            };
            let positions = d.place_towers(route, band_isd, 0.25, &mut rng);
            for pos in &positions {
                // co-location: snap to the nearest anchor tower with prob p,
                // unless that tower already carries this NR band
                let co_located = rng.chance(profile.colocation_prob);
                let (tid, anchor_pci) = if co_located {
                    let (aid, apci) = d.nearest_anchor(pos, &anchor_tower_ids);
                    let band_taken = d.towers[aid.0 as usize].cells.iter().any(|&c| d.cell(c).band.name == band.name);
                    if band_taken {
                        (d.new_tower(*pos, false), None)
                    } else {
                        d.towers[aid.0 as usize].co_located = true;
                        (aid, Some(apci))
                    }
                } else {
                    (d.new_tower(*pos, false), None)
                };
                let azimuth_base = rng.range(0.0, std::f64::consts::TAU);
                // co-located gNBs reuse the eNB's per-sector PCIs
                let anchor_sector_pcis: Vec<Pci> = if anchor_pci.is_some() {
                    d.towers[tid.0 as usize]
                        .cells
                        .iter()
                        .filter(|&&c| !d.cell(c).is_nr() && d.cell(c).band.name == profile.anchor_band.name)
                        .map(|&c| d.cell(c).pci)
                        .collect()
                } else {
                    Vec::new()
                };
                for s in 0..sectors {
                    // single-sector gNBs are omni; multi-sector towers get
                    // evenly spread boresights
                    let azimuth =
                        (sectors > 1).then(|| azimuth_base + s as f64 * std::f64::consts::TAU / sectors as f64);
                    if let Some(&apci) = anchor_sector_pcis.get(s) {
                        d.new_cell_with_pci(tid, band, apci, seed, azimuth);
                        continue;
                    }
                    d.new_cell(tid, band, &mut lte_pci, &mut nr_pci, seed, azimuth);
                }
                // associate this gNB with its nearest eNB tower (X2 peer)
                let (assoc, _) = d.nearest_anchor(&d.towers[tid.0 as usize].pos.clone(), &anchor_tower_ids);
                d.gnb_assoc.insert(tid, assoc);
            }
        }
        d.grid = GridIndex::build(&d.cells);
        d
    }

    /// Positions every `isd * U(0.8, 1.2)` meters along the route with a
    /// lateral offset, starting at `phase` fractions of one ISD.
    fn place_towers(&self, route: &Polyline, isd: f64, phase: f64, rng: &mut DetRng) -> Vec<Point> {
        let mut out = Vec::new();
        let mut dist = phase * isd;
        while dist < route.length() {
            let on_route = route.point_at(dist);
            let heading = route.heading_at(dist);
            let side = if rng.chance(0.5) { 1.0 } else { -1.0 };
            let lateral = rng.range(20.0, 150.0) * side;
            out.push(on_route.displaced(heading + std::f64::consts::FRAC_PI_2, lateral));
            dist += isd * rng.range(0.8, 1.2);
        }
        out
    }

    fn new_tower(&mut self, pos: Point, co_located: bool) -> TowerId {
        let id = TowerId(self.towers.len() as u32);
        self.towers.push(Tower { id, pos, cells: Vec::new(), co_located });
        id
    }

    fn new_cell(
        &mut self,
        tower: TowerId,
        band: Band,
        lte_pci: &mut u16,
        nr_pci: &mut u16,
        seed: u64,
        azimuth: Option<f64>,
    ) -> CellId {
        let pci = if band.is_nr() {
            let p = Pci(*nr_pci);
            *nr_pci = 520 + (*nr_pci - 520 + 13) % 488; // NR PCIs in 520..1007
            p
        } else {
            let p = Pci(*lte_pci);
            *lte_pci = 11 + (*lte_pci - 11 + 7) % 493; // LTE PCIs in 11..503
            p
        };
        self.push_cell(tower, band, pci, seed, azimuth)
    }

    fn new_cell_with_pci(&mut self, tower: TowerId, band: Band, pci: Pci, seed: u64, azimuth: Option<f64>) -> CellId {
        self.push_cell(tower, band, pci, seed, azimuth)
    }

    fn push_cell(&mut self, tower: TowerId, band: Band, pci: Pci, seed: u64, azimuth: Option<f64>) -> CellId {
        let id = CellId(self.cells.len() as u32);
        let site = self.towers[tower.0 as usize].pos;
        let tx_power = match band.class() {
            BandClass::MmWave => 58.0, // EIRP with beamforming gain
            BandClass::Mid => 47.0,
            BandClass::Low => 46.0,
        };
        // open terrain shadows more gently and decorrelates more slowly
        let (corr_scale, sigma_scale) = match self.env {
            Environment::Freeway => (2.0, 0.7),
            Environment::Urban => (1.2, 0.9),
            Environment::UrbanDense => (1.0, 1.0),
        };
        let cell = Cell {
            id,
            pci,
            band,
            tower,
            site,
            azimuth,
            propagation: Propagation::with_shadowing(
                hash2(seed, 0xCE11_0000 ^ id.0 as u64),
                band,
                tx_power,
                corr_scale,
                sigma_scale,
            ),
            noise_dbm: Cell::noise_floor_dbm(band),
        };
        self.towers[tower.0 as usize].cells.push(id);
        if band.is_nr() {
            self.nr_ids.push(id);
        } else {
            self.lte_ids.push(id);
        }
        self.cells.push(cell);
        id
    }

    fn nearest_anchor(&self, pos: &Point, anchors: &[TowerId]) -> (TowerId, Pci) {
        let mut best = anchors[0];
        let mut best_d = f64::INFINITY;
        for &a in anchors {
            let d = self.towers[a.0 as usize].pos.distance_sq(pos);
            if d < best_d {
                best_d = d;
                best = a;
            }
        }
        // the anchor cell is the first cell of the anchor tower
        let pci = self.cells[self.towers[best.0 as usize].cells[0].0 as usize].pci;
        (best, pci)
    }

    /// Looks up a cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// The x-extent of the spatial grid index as `(x0, columns, bin_m)`:
    /// column `c` (`0 <= c < columns`) covers world x in
    /// `[(x0 + c) * bin_m, (x0 + c + 1) * bin_m)`. This is the partitioning
    /// surface for spatial sharding — a shard owns a contiguous run of
    /// columns, so shard boundaries always align with grid-index bins.
    /// `columns` is at least 1 even for an empty deployment.
    pub fn grid_x_columns(&self) -> (i64, i64, f64) {
        (self.grid.x0, self.grid.w.max(1), GRID)
    }

    /// Cells whose site lies within `radius_m` of `pos`.
    pub fn cells_near(&self, pos: &Point, radius_m: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.cells_near_into(pos, radius_m, &mut out);
        out
    }

    /// [`Deployment::cells_near`] into a caller-provided buffer (cleared
    /// first) — lets per-tick callers reuse one allocation across ticks.
    pub fn cells_near_into(&self, pos: &Point, radius_m: f64, out: &mut Vec<CellId>) {
        out.clear();
        let r = (radius_m / GRID).ceil() as i64;
        let cx = (pos.x / GRID).floor() as i64;
        let cy = (pos.y / GRID).floor() as i64;
        for dx in -r..=r {
            for dy in -r..=r {
                for &id in self.grid.bin(cx + dx, cy + dy) {
                    if self.cell(id).site.distance(pos) <= radius_m {
                        out.push(id);
                    }
                }
            }
        }
    }

    /// The memoized per-cell planner-screen table: the supremum of each
    /// cell's *shadowing* field over the deployment's padded bounding
    /// rectangle. Built once per deployment on first use — a corner scan of
    /// each cell's shadowing lattice over the rectangle — and shared across
    /// clones and threads.
    fn planner_sup(&self) -> &NoiseSup {
        self.planner_sup.get_or_init(|| {
            // pad by 2 km: routes thread between their towers, so the site
            // bounding box plus the pad covers every fleet UE position and
            // the longest sleep-window travel box
            const PAD_M: f64 = 2_000.0;
            let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
            let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for c in &self.cells {
                x0 = x0.min(c.site.x);
                y0 = y0.min(c.site.y);
                x1 = x1.max(c.site.x);
                y1 = y1.max(c.site.y);
            }
            (x0, y0, x1, y1) = (x0 - PAD_M, y0 - PAD_M, x1 + PAD_M, y1 + PAD_M);
            let sup_db = self.cells.iter().map(|c| c.propagation.shadow_sup_over_rect(x0, y0, x1, y1)).collect();
            NoiseSup { x0, y0, x1, y1, sup_db }
        })
    }

    /// Sound upper bound (dB) on the stochastic terms of `id`'s channel —
    /// shadowing plus fast fading, at any position within `reach_m` of `pos`
    /// and at any time — or `None` when the query box leaves the
    /// deployment's padded bounding rectangle (then the caller falls back to
    /// the exact envelope; fleet UEs never leave it).
    ///
    /// `median_received_dbm(dist - reach) + noise_sup_db` therefore
    /// dominates any exact RSRP upper envelope over the same box (pattern
    /// loss is nonnegative and blockage only attenuates), which is the O(1)
    /// screen the sleep planner uses to skip pricing cells that provably
    /// cannot trigger anything.
    pub fn noise_sup_db(&self, id: CellId, pos: &Point, reach_m: f64) -> Option<f64> {
        self.shadow_sup_db(id, pos, reach_m)
            .map(|sh| sh + self.cell(id).propagation.fading_bound())
    }

    /// The shadowing-only part of [`Deployment::noise_sup_db`]: the memoized
    /// supremum of `id`'s shadowing field anywhere in the deployment's
    /// padded bounding rectangle, or `None` when the query box leaves it.
    /// Callers that can bound the fading term per tick (its node gaussians
    /// are pure functions of time) combine this with an exact fading
    /// supremum instead of the loose global Box–Muller bound.
    pub fn shadow_sup_db(&self, id: CellId, pos: &Point, reach_m: f64) -> Option<f64> {
        let s = self.planner_sup();
        let inside = pos.x - reach_m >= s.x0
            && pos.x + reach_m <= s.x1
            && pos.y - reach_m >= s.y0
            && pos.y + reach_m <= s.y1;
        inside.then(|| s.sup_db[id.0 as usize])
    }

    /// The strongest cells of a technology at `pos`/`t`, sorted by received
    /// power descending with [`rx_total_order`] (rx desc, then `CellId` asc —
    /// deterministic even under rx ties). `radius_m` bounds the search (use a
    /// few km).
    pub fn strongest(&self, pos: &Point, t: f64, nr: bool, radius_m: f64) -> Vec<(CellId, f64)> {
        let mut v: Vec<(CellId, f64)> = self
            .cells_near(pos, radius_m)
            .into_iter()
            .filter(|&id| self.cell(id).is_nr() == nr)
            .map(|id| (id, self.cell(id).rx_dbm(pos, t)))
            .collect();
        v.sort_unstable_by(rx_total_order);
        v
    }

    /// Strongest cells restricted to one band class; same [`rx_total_order`]
    /// ordering as [`Deployment::strongest`].
    pub fn strongest_in_class(&self, pos: &Point, t: f64, class: BandClass, radius_m: f64) -> Vec<(CellId, f64)> {
        let mut v: Vec<(CellId, f64)> = self
            .cells_near(pos, radius_m)
            .into_iter()
            .filter(|&id| self.cell(id).is_nr() && self.cell(id).band.class() == class)
            .map(|id| (id, self.cell(id).rx_dbm(pos, t)))
            .collect();
        v.sort_unstable_by(rx_total_order);
        v
    }

    /// True when the area around `pos` is configured with the MCG-split
    /// ("dual") bearer rather than the SCG ("5G-only") bearer (§4.2).
    pub fn dual_mode_at(&self, pos: &Point) -> bool {
        self.bearer_field.sample_uniform_cell(pos) < self.dual_fraction
    }

    /// The eNB tower associated with a gNB tower (its X2 peer). Returns the
    /// tower itself when the cell is an eNB cell.
    pub fn assoc_enb_tower(&self, nr_cell: CellId) -> TowerId {
        let t = self.cell(nr_cell).tower;
        *self.gnb_assoc.get(&t).unwrap_or(&t)
    }

    /// True when two NR cells belong to the same gNB (same tower) —
    /// distinguishes SCG Modification from SCG Change.
    pub fn same_gnb(&self, a: CellId, b: CellId) -> bool {
        self.cell(a).tower == self.cell(b).tower
    }

    /// True when the gNB hosting `nr_cell` is co-located with an eNB.
    pub fn gnb_co_located(&self, nr_cell: CellId) -> bool {
        self.towers[self.cell(nr_cell).tower.0 as usize].co_located
    }

    /// All LTE cell ids.
    pub fn lte_cells(&self) -> &[CellId] {
        &self.lte_ids
    }

    /// All NR cell ids.
    pub fn nr_cells(&self) -> &[CellId] {
        &self.nr_ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::routes;

    fn freeway() -> Polyline {
        routes::freeway_leg(Point::ORIGIN, 0.0, 20_000.0)
    }

    fn deployment(carrier: Carrier, env: Environment, arch: Arch) -> Deployment {
        let route = match env {
            Environment::Freeway => freeway(),
            _ => routes::rectangular_loop(Point::ORIGIN, 1500.0, 1000.0),
        };
        Deployment::generate(&route, carrier, env, arch, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        let b = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        assert_eq!(a.cells.len(), b.cells.len());
        assert_eq!(a.towers.len(), b.towers.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.pci, y.pci);
            assert_eq!(x.site, y.site);
        }
    }

    #[test]
    fn lte_only_arch_has_no_nr() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Lte);
        assert!(d.nr_cells().is_empty());
        assert!(!d.lte_cells().is_empty());
    }

    #[test]
    fn nsa_freeway_has_low_band_nr() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        assert!(!d.nr_cells().is_empty());
        for &id in d.nr_cells() {
            assert_eq!(d.cell(id).band.class(), BandClass::Low);
        }
    }

    #[test]
    fn urban_dense_opx_has_mmwave_sectors() {
        let d = deployment(Carrier::OpX, Environment::UrbanDense, Arch::Nsa);
        let mm: Vec<_> = d.nr_cells().iter().filter(|&&id| d.cell(id).band.class() == BandClass::MmWave).collect();
        assert!(!mm.is_empty());
        // mmWave towers host 3 sectors per mmWave band
        let probe = d.cell(*mm[0]);
        let (t, band_name) = (probe.tower, probe.band.name);
        let sector_count = d.towers[t.0 as usize].cells.iter().filter(|&&c| d.cell(c).band.name == band_name).count();
        assert_eq!(sector_count, 3);
    }

    #[test]
    fn colocated_gnb_shares_pci_with_enb() {
        // with prob 0.36 and many towers OpX urban should have co-located sites
        let d = deployment(Carrier::OpX, Environment::Urban, Arch::Nsa);
        let mut found = false;
        for t in &d.towers {
            if t.co_located {
                let lte_pcis: Vec<Pci> =
                    t.cells.iter().filter(|&&c| !d.cell(c).is_nr()).map(|&c| d.cell(c).pci).collect();
                let nr_pcis: Vec<Pci> =
                    t.cells.iter().filter(|&&c| d.cell(c).is_nr()).map(|&c| d.cell(c).pci).collect();
                assert!(!lte_pcis.is_empty() && !nr_pcis.is_empty());
                assert!(
                    nr_pcis.iter().any(|p| lte_pcis.contains(p)),
                    "co-located tower should share a PCI: lte={lte_pcis:?} nr={nr_pcis:?}"
                );
                found = true;
            }
        }
        assert!(found, "expected at least one co-located tower");
    }

    #[test]
    fn towers_are_near_route() {
        let d = deployment(Carrier::OpY, Environment::Freeway, Arch::Nsa);
        for t in &d.towers {
            assert!(t.pos.y.abs() <= 160.0, "tower {t:?} too far from the (horizontal) route");
        }
    }

    #[test]
    fn strongest_returns_sorted() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        let pos = Point::new(5000.0, 0.0);
        let s = d.strongest(&pos, 0.0, false, 6000.0);
        assert!(s.len() >= 2);
        for w in s.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rx_total_order_breaks_ties_by_cell_id() {
        // equal rx values (including an exact 0.0 tie and a -0.0 vs 0.0 pair)
        // must order by CellId ascending, never by input position
        let mut v = vec![
            (CellId(7), -80.0),
            (CellId(2), -80.0),
            (CellId(9), -75.0),
            (CellId(5), 0.0),
            (CellId(4), -0.0),
            (CellId(1), -80.0),
        ];
        v.sort_unstable_by(rx_total_order);
        let ids: Vec<u32> = v.iter().map(|&(CellId(i), _)| i).collect();
        // 0.0 sorts above -0.0 under total_cmp; equal -80.0s order as 1,2,7
        assert_eq!(ids, vec![5, 4, 9, 1, 2, 7]);
        // reversed input produces the identical order: the comparator is total
        let mut w = v.clone();
        w.reverse();
        w.sort_unstable_by(rx_total_order);
        assert_eq!(v, w);
    }

    #[test]
    fn strongest_is_stable_under_shuffled_scan_order() {
        // strongest() must be a pure function of (pos, t): repeated calls and
        // the in_class variant agree on ordering for the shared prefix
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        let pos = Point::new(7000.0, -30.0);
        let a = d.strongest(&pos, 2.5, true, 6000.0);
        let b = d.strongest(&pos, 2.5, true, 6000.0);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert_ne!(rx_total_order(&w[0], &w[1]), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn cells_near_into_reuses_buffer_and_matches() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        let mut buf = Vec::new();
        for i in 0..10 {
            let pos = Point::new(i as f64 * 1800.0, 40.0);
            d.cells_near_into(&pos, 3000.0, &mut buf);
            assert_eq!(buf, d.cells_near(&pos, 3000.0));
        }
    }

    #[test]
    fn cells_near_respects_radius() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        let pos = Point::new(10_000.0, 0.0);
        for id in d.cells_near(&pos, 2000.0) {
            assert!(d.cell(id).site.distance(&pos) <= 2000.0);
        }
    }

    #[test]
    fn anchor_isd_smaller_than_nr_low_isd() {
        let isd = IsdPlan::for_env(Environment::Freeway);
        assert!(isd.lte_anchor < isd.nr_low / 1.5);
        let mm = IsdPlan::for_env(Environment::UrbanDense);
        assert!(mm.nr_mmwave < mm.nr_mid);
    }

    #[test]
    fn dual_mode_field_has_both_modes() {
        let d = deployment(Carrier::OpX, Environment::Urban, Arch::Nsa);
        let mut dual = 0;
        let mut only = 0;
        for i in 0..200 {
            let p = Point::new(i as f64 * 123.0, (i % 13) as f64 * 517.0);
            if d.dual_mode_at(&p) {
                dual += 1;
            } else {
                only += 1;
            }
        }
        assert!(dual > 10 && only > 10, "dual={dual} only={only}");
    }

    #[test]
    fn gnb_assoc_points_to_enb_tower() {
        let d = deployment(Carrier::OpX, Environment::Freeway, Arch::Nsa);
        for &nr in d.nr_cells() {
            let enb_tower = d.assoc_enb_tower(nr);
            let has_lte = d.towers[enb_tower.0 as usize].cells.iter().any(|&c| !d.cell(c).is_nr());
            assert!(has_lte, "assoc tower must host LTE cells");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fiveg_geo::routes;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn deployment_structure_invariants(
            seed in 0u64..1000,
            km in 5.0..25.0f64,
        ) {
            let route = routes::freeway_leg(Point::ORIGIN, 0.1, km * 1000.0);
            let d = Deployment::generate(&route, Carrier::OpY, Environment::Freeway, Arch::Nsa, seed);
            // every cell's tower exists and lists it back
            for c in &d.cells {
                let t = &d.towers[c.tower.0 as usize];
                prop_assert!(t.cells.contains(&c.id));
                prop_assert_eq!(t.pos, c.site);
            }
            // LTE and NR id lists partition the cells
            prop_assert_eq!(d.lte_cells().len() + d.nr_cells().len(), d.cells.len());
            for &id in d.lte_cells() {
                prop_assert!(!d.cell(id).is_nr());
            }
            for &id in d.nr_cells() {
                prop_assert!(d.cell(id).is_nr());
            }
            // non-co-located NR cells never collide with LTE PCI space
            for &id in d.nr_cells() {
                let c = d.cell(id);
                if !d.towers[c.tower.0 as usize].co_located {
                    prop_assert!(c.pci.0 >= 520, "non-co-located NR PCI in LTE space: {:?}", c.pci);
                }
            }
            // gNB association always resolves to an eNB-hosting tower
            for &nr in d.nr_cells() {
                let t = d.assoc_enb_tower(nr);
                prop_assert!(d.towers[t.0 as usize].cells.iter().any(|&c| !d.cell(c).is_nr()));
            }
        }

        #[test]
        fn cells_near_matches_brute_force_scan(
            seed in 0u64..500,
            km in 2.0..15.0f64,
            radius in 300.0..9000.0f64,
            frac in 0.0..1.0f64,
            lateral in -400.0..400.0f64,
        ) {
            // the spatial index must return exactly the set a brute-force
            // distance scan over every cell returns — for random routes,
            // query positions (on and off the route) and radii
            let route = routes::freeway_leg(Point::ORIGIN, 0.07, km * 1000.0);
            let d = Deployment::generate(&route, Carrier::OpY, Environment::Freeway, Arch::Nsa, seed);
            let on_route = route.point_at(frac * route.length());
            let pos = Point::new(on_route.x, on_route.y + lateral);
            let mut fast = d.cells_near(&pos, radius);
            fast.sort_unstable();
            let brute: Vec<CellId> =
                d.cells.iter().filter(|c| c.site.distance(&pos) <= radius).map(|c| c.id).collect();
            prop_assert_eq!(fast, brute);
        }

        #[test]
        fn strongest_is_sorted_and_bounded(seed in 0u64..100) {
            let route = routes::freeway_leg(Point::ORIGIN, 0.0, 8_000.0);
            let d = Deployment::generate(&route, Carrier::OpX, Environment::Freeway, Arch::Nsa, seed);
            let pos = Point::new(4000.0, 50.0);
            for nr in [false, true] {
                let s = d.strongest(&pos, 1.0, nr, 5000.0);
                for w in s.windows(2) {
                    prop_assert!(w[0].1 >= w[1].1);
                }
                for (id, _) in &s {
                    prop_assert_eq!(d.cell(*id).is_nr(), nr);
                    prop_assert!(d.cell(*id).site.distance(&pos) <= 5000.0);
                }
            }
        }
    }
}
