//! Handover stage durations: T1 (preparation) and T2 (execution), §5.2.
//!
//! The paper decomposes every HO into the preparation stage 𝑇1 (measurement
//! report → HO command; the network decides and reserves resources) and the
//! execution stage 𝑇2 (HO command → RACH completion; the data plane of the
//! affected radios is halted).
//!
//! These durations were *measured* physically; here they are calibrated
//! log-normal models chosen to satisfy the paper's headline statistics
//! simultaneously:
//!
//! * LTE HO ≈ 76 ms total; NSA ≈ 167 ms (a 119% increase); SA ≈ 110 ms;
//! * T1 is ~41% of an NSA HO and ~48% longer than LTE's T1;
//! * NSA T2 is 1.4–5.4× LTE's T2 depending on HO type;
//! * mmWave T2 is 42–45% larger than low-band T2;
//! * SA T1 median is comparable to LTE but with much higher variance;
//! * co-located eNB/gNB saves ~13 ms of cross-tower X2 latency (Fig. 13).

use crate::ho::{Arch, HoType};
use fiveg_radio::{hash2, BandClass, DetRng};
use serde::{Deserialize, Serialize};

/// Sampled durations for one handover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Preparation stage, ms.
    pub t1_ms: f64,
    /// Execution stage, ms.
    pub t2_ms: f64,
}

impl StageSample {
    /// Total HO duration, ms.
    pub fn total_ms(&self) -> f64 {
        self.t1_ms + self.t2_ms
    }
}

/// Extra T1 incurred when the eNB and gNB of an NSA HO are on different
/// towers (cross-tower X2 latency, Fig. 13).
pub const CROSS_TOWER_T1_MS: f64 = 13.0;

/// The duration model. Stateless; draws are keyed by (seed, HO sequence
/// number) so replays are exact.
#[derive(Debug, Clone, Copy)]
pub struct StageModel {
    seed: u64,
}

impl StageModel {
    /// Creates the model for a scenario seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Mean T1/T2 in ms for a HO type under an architecture.
    ///
    /// Returns `(t1_mean, t1_shape, t2_mean, t2_shape)` where `shape` is the
    /// sigma of the underlying normal of the log-normal draw.
    fn params(ho: HoType, arch: Arch) -> (f64, f64, f64, f64) {
        match (arch, ho) {
            // Pure LTE: total ≈ 76 ms.
            (Arch::Lte, _) => (46.0, 0.35, 30.0, 0.30),
            // SA 5G: total ≈ 110 ms; T1 median ≈ LTE's but heavy tail.
            (Arch::Sa, _) => (44.0, 0.85, 66.0, 0.35),
            // NSA: totals ≈ 167 ms on average across the HO mix; the
            // eNB↔gNB coordination inflates T1 by ~48% over LTE.
            (Arch::Nsa, HoType::Scga) => (64.0, 0.40, 88.0, 0.35),
            (Arch::Nsa, HoType::Scgr) => (58.0, 0.40, 80.0, 0.35),
            (Arch::Nsa, HoType::Scgm) => (68.0, 0.40, 98.0, 0.35),
            (Arch::Nsa, HoType::Scgc) => (76.0, 0.40, 122.0, 0.35),
            (Arch::Nsa, HoType::Mnbh) => (70.0, 0.40, 102.0, 0.35),
            (Arch::Nsa, HoType::Lteh) => (70.0, 0.40, 104.0, 0.35),
            (Arch::Nsa, HoType::Mcgh) => (68.0, 0.40, 98.0, 0.35), // not observed in practice
        }
    }

    /// Samples stage durations for the `seq`-th HO of a run.
    ///
    /// * `band` — band class of the (NR) leg involved; mmWave inflates T2 by
    ///   ~43% (beam management, §5.2) for 5G-category HOs;
    /// * `co_located` — whether the involved eNB/gNB share a tower (NSA
    ///   only); non-co-located HOs pay [`CROSS_TOWER_T1_MS`].
    pub fn sample(&self, seq: u64, ho: HoType, arch: Arch, band: BandClass, co_located: bool) -> StageSample {
        let (t1_mean, t1_shape, t2_mean, t2_shape) = Self::params(ho, arch);
        let mut rng = DetRng::new(hash2(self.seed, 0x57A6 ^ seq));
        let mut t1 = rng.lognormal_mean(t1_mean, t1_shape);
        let mut t2 = rng.lognormal_mean(t2_mean, t2_shape);
        if arch == Arch::Nsa && !co_located {
            t1 += CROSS_TOWER_T1_MS * rng.range(0.8, 1.2);
        }
        if band == BandClass::MmWave && ho.category() == crate::ho::HoCategory::FiveG {
            t2 *= rng.range(1.40, 1.46);
        }
        StageSample { t1_ms: t1, t2_ms: t2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_sample(n: u64, f: impl Fn(u64) -> f64) -> f64 {
        (0..n).map(f).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_per_sequence() {
        let m = StageModel::new(1);
        let a = m.sample(5, HoType::Scgm, Arch::Nsa, BandClass::Low, true);
        let b = m.sample(5, HoType::Scgm, Arch::Nsa, BandClass::Low, true);
        assert_eq!(a, b);
        let c = m.sample(6, HoType::Scgm, Arch::Nsa, BandClass::Low, true);
        assert_ne!(a, c);
    }

    #[test]
    fn lte_total_near_76ms() {
        let m = StageModel::new(2);
        let avg = mean_sample(4000, |i| m.sample(i, HoType::Lteh, Arch::Lte, BandClass::Mid, true).total_ms());
        assert!((avg - 76.0).abs() < 6.0, "LTE total {avg}");
    }

    #[test]
    fn nsa_total_near_167ms_and_t1_fraction_41pct() {
        let m = StageModel::new(3);
        // weight the HO mix roughly as observed (many SCGA/SCGR, fewer SCGC)
        let mix = [
            (HoType::Scga, 3),
            (HoType::Scgr, 3),
            (HoType::Scgm, 2),
            (HoType::Scgc, 2),
            (HoType::Mnbh, 1),
            (HoType::Lteh, 2),
        ];
        let mut tot = 0.0;
        let mut t1 = 0.0;
        let mut n = 0u64;
        for (ho, w) in mix {
            for i in 0..(w * 1000) {
                let s = m.sample(n * 7919 + i, ho, Arch::Nsa, BandClass::Low, false);
                tot += s.total_ms();
                t1 += s.t1_ms;
                n += 1;
            }
        }
        let avg = tot / n as f64;
        let frac = t1 / tot;
        assert!((avg - 167.0).abs() < 15.0, "NSA total {avg}");
        assert!((frac - 0.41).abs() < 0.05, "T1 fraction {frac}");
    }

    #[test]
    fn nsa_t1_about_48pct_over_lte() {
        let m = StageModel::new(4);
        let lte = mean_sample(3000, |i| m.sample(i, HoType::Lteh, Arch::Lte, BandClass::Mid, true).t1_ms);
        // realistic co-location mix: most gNBs are not co-located (§6.3)
        let nsa = mean_sample(3000, |i| {
            let co = i % 10 < 2;
            m.sample(i + 90_000, HoType::Scgm, Arch::Nsa, BandClass::Low, co).t1_ms
        });
        let ratio = nsa / lte;
        assert!((1.35..1.85).contains(&ratio), "T1 ratio {ratio}");
    }

    #[test]
    fn nsa_t2_ratio_in_paper_band() {
        let m = StageModel::new(5);
        let lte = mean_sample(3000, |i| m.sample(i, HoType::Lteh, Arch::Lte, BandClass::Mid, true).t2_ms);
        for ho in [HoType::Scgr, HoType::Scgc] {
            let nsa = mean_sample(3000, |i| m.sample(i + 50_000, ho, Arch::Nsa, BandClass::Low, false).t2_ms);
            let ratio = nsa / lte;
            assert!((1.4..5.4).contains(&ratio), "{ho}: T2 ratio {ratio}");
        }
    }

    #[test]
    fn mmwave_t2_is_42_45pct_larger() {
        let m = StageModel::new(6);
        let low = mean_sample(4000, |i| m.sample(i, HoType::Scgc, Arch::Nsa, BandClass::Low, true).t2_ms);
        let mm = mean_sample(4000, |i| m.sample(i, HoType::Scgc, Arch::Nsa, BandClass::MmWave, true).t2_ms);
        let inc = mm / low - 1.0;
        assert!((0.38..0.50).contains(&inc), "mmWave T2 increase {inc}");
    }

    #[test]
    fn colocation_saves_about_13ms() {
        let m = StageModel::new(7);
        let co = mean_sample(4000, |i| m.sample(i, HoType::Scga, Arch::Nsa, BandClass::Low, true).t1_ms);
        let non = mean_sample(4000, |i| m.sample(i, HoType::Scga, Arch::Nsa, BandClass::Low, false).t1_ms);
        let diff = non - co;
        assert!((10.0..16.0).contains(&diff), "co-location saving {diff}");
    }

    #[test]
    fn sa_has_high_t1_variance_but_similar_median() {
        let m = StageModel::new(8);
        let mut lte: Vec<f64> =
            (0..4000).map(|i| m.sample(i, HoType::Lteh, Arch::Lte, BandClass::Mid, true).t1_ms).collect();
        let mut sa: Vec<f64> =
            (0..4000).map(|i| m.sample(i, HoType::Mcgh, Arch::Sa, BandClass::Low, true).t1_ms).collect();
        lte.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sa.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = |v: &[f64]| v[v.len() / 2];
        let std = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64).sqrt()
        };
        // median comparable (slightly better) than LTE
        assert!(med(&sa) <= med(&lte) * 1.05, "SA med {} vs LTE {}", med(&sa), med(&lte));
        // much higher variance
        assert!(std(&sa) > 2.0 * std(&lte), "SA std {} vs LTE {}", std(&sa), std(&lte));
    }

    #[test]
    fn samples_are_positive() {
        let m = StageModel::new(9);
        for i in 0..2000 {
            let s = m.sample(i, HoType::Scgc, Arch::Nsa, BandClass::MmWave, false);
            assert!(s.t1_ms > 0.0 && s.t2_ms > 0.0);
        }
    }
}
