//! Cross-layer invariant checker and deterministic scenario fuzzer.
//!
//! The simulator deliberately keeps two engines — the snapshot fast path and
//! the retained `run_reference` — whose byte-equivalence underwrites every
//! result built on top of them. This crate turns that dual-engine design
//! into a standing correctness tool with two halves:
//!
//! * [`shadow::Oracle`] — a [`fiveg_sim::SimHook`] that replays every
//!   engine transition against an independent shadow state machine *while
//!   the run executes*: legal RRC/HO phase ordering (prepare → execute →
//!   complete | failure, no orphaned preparations), at most one serving
//!   cell per leg with NSA/SA leg-consistency, physical RRS bounds and
//!   noise-floor sanity, monotonic time, rollback identity on injected HO
//!   failures.
//! * [`check`] — post-run consistency checks over the finished
//!   [`fiveg_sim::Trace`], the telemetry counter algebra
//!   ([`fiveg_telemetry::CounterSnapshot`]), the event journal, and the
//!   serde round-trip identity of the trace.
//!
//! [`fuzz`] drives both across a seeded random scenario space (route ×
//! carrier × arch × faults), runs each case through *both* engines
//! differentially, shrinks failures to minimal repro cases, and speaks the
//! corpus TOML format that `tests/corpus/` replays in CI. [`mutate`] is the
//! oracle's own regression harness: it corrupts the hook stream in known
//! ways and asserts the oracle notices — a vacuous checker fails loudly.
//!
//! Every [`Violation`] carries the tick, sim-time, scenario seed and the
//! offending transition, so any failure is a one-command repro:
//! `scenario_fuzz --replay <case.toml>`.

pub mod check;
pub mod fuzz;
pub mod mutate;
pub mod shadow;
pub mod violation;

pub use check::{check_trace, CheckOpts};
pub use fuzz::{run_case, shrink, shrink_with, CaseResult, FuzzCase, FuzzEngine, FuzzRoute, RunOpts, CASE_SCHEMA};
pub use mutate::{mutation_self_test, mutation_self_test_traced, MutatingHook, MutationKind, MutationReport};
pub use shadow::Oracle;
pub use violation::Violation;
