//! Mutation self-test: proves the oracle actually *catches* bugs.
//!
//! A checker that never fires is indistinguishable from a correct system.
//! [`MutatingHook`] sits between the engine and an [`Oracle`] and corrupts
//! the forwarded hook stream in one known way ([`MutationKind`]) — exactly
//! the corruption a real state-machine bug would produce. The simulation
//! itself is untouched; only the oracle's view of it lies. The self-test
//! then asserts the oracle flags the lie within a bounded number of ticks.
//!
//! Run it standalone via [`mutation_self_test`] or as part of the
//! `scenario_fuzz` binary (it runs once per invocation unless
//! `--no-selftest`).

use crate::shadow::Oracle;
use fiveg_ran::{Arch, Carrier, HandoverRecord, HoPhase};
use fiveg_rrc::ReconfigAction;
use fiveg_sim::{engine, AttachReason, ScenarioBuilder, ServingCells, SimHook, Telemetry, TickView};

/// One way of corrupting the hook stream, mimicking a class of real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Swallow a committed HO: the state machine "forgot" to apply/report a
    /// completed procedure.
    DropHoComplete,
    /// Swallow a HO command: execution starts without the preparation→
    /// execution edge ever being signalled.
    DropHoCommand,
    /// Report the serving cells with the LTE and NR legs exchanged — a
    /// leg-bookkeeping bug.
    SwapServingLegs,
    /// Report a tick 5 s in the past — a broken sim clock.
    RewindClock,
    /// Inject a reattach to the cell already being served — a spurious RLF.
    PhantomReattach,
}

impl MutationKind {
    /// Every mutation, for exhaustive self-tests.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::DropHoComplete,
        MutationKind::DropHoCommand,
        MutationKind::SwapServingLegs,
        MutationKind::RewindClock,
        MutationKind::PhantomReattach,
    ];

    /// Stable snake_case name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropHoComplete => "drop_ho_complete",
            MutationKind::DropHoCommand => "drop_ho_command",
            MutationKind::SwapServingLegs => "swap_serving_legs",
            MutationKind::RewindClock => "rewind_clock",
            MutationKind::PhantomReattach => "phantom_reattach",
        }
    }
}

/// Forwards the hook stream to an [`Oracle`], applying one [`MutationKind`]
/// once, at the first eligible event with `t >= inject_after`.
pub struct MutatingHook<'a> {
    oracle: &'a mut Oracle,
    kind: MutationKind,
    inject_after: f64,
    injected_at: Option<f64>,
    detected_at: Option<f64>,
}

impl<'a> MutatingHook<'a> {
    /// Wraps `oracle`; the mutation arms once sim-time reaches
    /// `inject_after` seconds.
    pub fn new(oracle: &'a mut Oracle, kind: MutationKind, inject_after: f64) -> MutatingHook<'a> {
        MutatingHook { oracle, kind, inject_after, injected_at: None, detected_at: None }
    }

    /// Sim-time at which the corruption was actually applied, if it fired.
    pub fn injected_at(&self) -> Option<f64> {
        self.injected_at
    }

    /// Sim-time of the first oracle violation after injection, if any.
    pub fn detected_at(&self) -> Option<f64> {
        self.detected_at
    }

    fn armed(&self, t: f64) -> bool {
        self.injected_at.is_none() && t >= self.inject_after
    }

    /// Records detection against the *real* clock `t` (never the mutated
    /// one, which RewindClock sends into the past).
    fn observe(&mut self, t: f64) {
        if self.injected_at.is_some() && self.detected_at.is_none() && self.oracle.total_violations() > 0 {
            self.detected_at = Some(t);
        }
    }
}

impl SimHook for MutatingHook<'_> {
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {
        self.oracle.on_attach(t, reason, serving);
        self.observe(t);
    }

    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {
        self.oracle.on_decision(t, action);
        self.observe(t);
    }

    fn on_ho_command(&mut self, t: f64) {
        if self.kind == MutationKind::DropHoCommand && self.armed(t) {
            self.injected_at = Some(t);
            return;
        }
        self.oracle.on_ho_command(t);
        self.observe(t);
    }

    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        if self.kind == MutationKind::DropHoComplete && self.armed(t) {
            self.injected_at = Some(t);
            return;
        }
        self.oracle.on_ho_complete(t, rec, serving);
        self.observe(t);
    }

    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.oracle.on_ho_failure(t, rec, serving);
        self.observe(t);
    }

    fn on_tick(&mut self, view: &TickView) {
        let mut view = *view;
        match self.kind {
            MutationKind::SwapServingLegs if self.armed(view.t) && view.serving.lte != view.serving.nr => {
                self.injected_at = Some(view.t);
                view.serving = ServingCells { lte: view.serving.nr, nr: view.serving.lte };
            }
            MutationKind::RewindClock if self.armed(view.t) => {
                self.injected_at = Some(view.t);
                view.t -= 5.0;
            }
            MutationKind::PhantomReattach if self.armed(view.t) && view.serving.lte.is_some() => {
                self.injected_at = Some(view.t);
                // a reattach to the very cell being served: real RLF recovery
                // must pick a different cell
                self.oracle.on_attach(
                    view.t,
                    AttachReason::Reattach { leg: fiveg_ran::RadioTech::Lte, rlf: true },
                    view.serving,
                );
            }
            _ => {}
        }
        let real_t = view.t.max(self.injected_at.unwrap_or(view.t));
        self.oracle.on_tick(&view);
        self.observe(real_t);
    }

    fn on_run_end(&mut self, t: f64, serving: ServingCells, phase: HoPhase, queued: usize) {
        self.oracle.on_run_end(t, serving, phase, queued);
        self.observe(t);
    }
}

/// Outcome of one [`mutation_self_test`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationReport {
    /// Which corruption was applied.
    pub kind: MutationKind,
    /// When the corruption fired (None = the run offered no eligible event,
    /// which is itself a test failure).
    pub injected_at: Option<f64>,
    /// When the oracle first flagged anything after the injection.
    pub detected_at: Option<f64>,
    /// Total violations the oracle reported.
    pub violations: u64,
}

impl MutationReport {
    /// True when the corruption fired and the oracle caught it within
    /// `max_latency_s` of sim-time.
    pub fn caught_within(&self, max_latency_s: f64) -> bool {
        match (self.injected_at, self.detected_at) {
            (Some(i), Some(d)) => d - i <= max_latency_s && self.violations > 0,
            _ => false,
        }
    }
}

/// Runs one mutated NSA freeway scenario and reports whether the oracle
/// caught the corruption. Deterministic in `seed`.
pub fn mutation_self_test(kind: MutationKind, seed: u64) -> MutationReport {
    let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, seed).duration_s(180.0).sample_hz(10.0).build();
    let mut oracle = Oracle::new(Arch::Nsa, seed);
    let mut hook = MutatingHook::new(&mut oracle, kind, 30.0);
    engine::run_hooked(&s, &Telemetry::disabled(), &mut hook);
    let (injected_at, detected_at) = (hook.injected_at(), hook.detected_at());
    MutationReport { kind, injected_at, detected_at, violations: oracle.total_violations() }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Detection bound: five ticks of the 10 Hz self-test scenario.
    const MAX_LATENCY_S: f64 = 0.5;

    #[test]
    fn every_mutation_is_caught_within_five_ticks() {
        for kind in MutationKind::ALL {
            let r = mutation_self_test(kind, 1);
            assert!(r.injected_at.is_some(), "{}: mutation never fired", kind.name());
            assert!(
                r.caught_within(MAX_LATENCY_S),
                "{}: injected at {:?}, detected at {:?} ({} violations)",
                kind.name(),
                r.injected_at,
                r.detected_at,
                r.violations
            );
        }
    }

    #[test]
    fn unmutated_control_run_is_clean() {
        // same scenario, no corruption: the oracle must stay silent, or the
        // detection results above mean nothing
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 1).duration_s(180.0).sample_hz(10.0).build();
        let mut oracle = Oracle::new(Arch::Nsa, 1);
        engine::run_hooked(&s, &Telemetry::disabled(), &mut oracle);
        assert!(oracle.is_clean(), "{:?}", oracle.violations());
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<_> = MutationKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MutationKind::ALL.len());
    }
}
