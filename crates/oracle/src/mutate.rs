//! Mutation self-test: proves the oracle actually *catches* bugs.
//!
//! A checker that never fires is indistinguishable from a correct system.
//! [`MutatingHook`] sits between the engine and an [`Oracle`] and corrupts
//! the forwarded hook stream in one known way ([`MutationKind`]) — exactly
//! the corruption a real state-machine bug would produce. The simulation
//! itself is untouched; only the oracle's view of it lies. The self-test
//! then asserts the oracle flags the lie within a bounded number of ticks.
//!
//! Run it standalone via [`mutation_self_test`] or as part of the
//! `scenario_fuzz` binary (it runs once per invocation unless
//! `--no-selftest`).
//!
//! The harness can also carry a [`SpanAssembler`] alongside the oracle
//! ([`MutatingHook::with_assembler`] / [`mutation_self_test_traced`]): the
//! assembler sees the *same* corrupted stream, its anomaly log proves the
//! span layer flags impossible event orders instead of absorbing them, and
//! the first oracle violation snapshots its flight recorder
//! (`oracle_violation` dump).

use crate::shadow::Oracle;
use fiveg_ran::{Arch, Carrier, HandoverRecord, HoPhase};
use fiveg_rrc::ReconfigAction;
use fiveg_sim::{engine, AttachReason, ScenarioBuilder, ServingCells, SimHook, Telemetry, TickView};
use fiveg_trace::{SpanAssembler, SpanLog};

/// One way of corrupting the hook stream, mimicking a class of real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Swallow a committed HO: the state machine "forgot" to apply/report a
    /// completed procedure.
    DropHoComplete,
    /// Swallow a HO command: execution starts without the preparation→
    /// execution edge ever being signalled.
    DropHoCommand,
    /// Report the serving cells with the LTE and NR legs exchanged — a
    /// leg-bookkeeping bug.
    SwapServingLegs,
    /// Report a tick 5 s in the past — a broken sim clock.
    RewindClock,
    /// Inject a reattach to the cell already being served — a spurious RLF.
    PhantomReattach,
    /// Hold back a HO command and deliver it *after* its completion — an
    /// out-of-order event stream. The oracle must flag the causality break,
    /// and a span assembler on the same stream must record anomalies and
    /// abandon the span rather than fabricate a plausible one.
    OutOfOrderSpan,
    /// An event-driven engine oversleeps: it declares a 2-tick sleep via
    /// [`SimHook::on_sleep`], then actually goes dark for 3 ticks — the
    /// exact signature of an unsound wakeup bound fast-forwarding a UE past
    /// due work. The oracle must flag the unsanctioned extra tick at the
    /// wake tick itself.
    OversleptUe,
}

impl MutationKind {
    /// Every mutation, for exhaustive self-tests.
    pub const ALL: [MutationKind; 7] = [
        MutationKind::DropHoComplete,
        MutationKind::DropHoCommand,
        MutationKind::SwapServingLegs,
        MutationKind::RewindClock,
        MutationKind::PhantomReattach,
        MutationKind::OutOfOrderSpan,
        MutationKind::OversleptUe,
    ];

    /// Stable snake_case name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropHoComplete => "drop_ho_complete",
            MutationKind::DropHoCommand => "drop_ho_command",
            MutationKind::SwapServingLegs => "swap_serving_legs",
            MutationKind::RewindClock => "rewind_clock",
            MutationKind::PhantomReattach => "phantom_reattach",
            MutationKind::OutOfOrderSpan => "out_of_order_span",
            MutationKind::OversleptUe => "overslept_ue",
        }
    }
}

/// Forwards the hook stream to an [`Oracle`] (and optionally a
/// [`SpanAssembler`], which sees the identical stream), applying one
/// [`MutationKind`] once, at the first eligible event with
/// `t >= inject_after`.
pub struct MutatingHook<'a> {
    oracle: &'a mut Oracle,
    assembler: Option<&'a mut SpanAssembler>,
    kind: MutationKind,
    inject_after: f64,
    injected_at: Option<f64>,
    detected_at: Option<f64>,
    /// OutOfOrderSpan: the stashed command time, delivered after the next
    /// completion.
    held_command: Option<f64>,
    /// OversleptUe: ticks still to swallow after the fake sleep declaration.
    swallow_ticks: u32,
}

impl<'a> MutatingHook<'a> {
    /// Wraps `oracle`; the mutation arms once sim-time reaches
    /// `inject_after` seconds.
    pub fn new(oracle: &'a mut Oracle, kind: MutationKind, inject_after: f64) -> MutatingHook<'a> {
        MutatingHook {
            oracle,
            assembler: None,
            kind,
            inject_after,
            injected_at: None,
            detected_at: None,
            held_command: None,
            swallow_ticks: 0,
        }
    }

    /// Also feeds the (corrupted) stream to `asm`, and snapshots its flight
    /// recorder when the oracle first flags a violation.
    pub fn with_assembler(mut self, asm: &'a mut SpanAssembler) -> MutatingHook<'a> {
        self.assembler = Some(asm);
        self
    }

    /// Sim-time at which the corruption was actually applied, if it fired.
    pub fn injected_at(&self) -> Option<f64> {
        self.injected_at
    }

    /// Sim-time of the first oracle violation after injection, if any.
    pub fn detected_at(&self) -> Option<f64> {
        self.detected_at
    }

    fn armed(&self, t: f64) -> bool {
        self.injected_at.is_none() && t >= self.inject_after
    }

    /// Records detection against the *real* clock `t` (never the mutated
    /// one, which RewindClock sends into the past). The first detection
    /// triggers an `oracle_violation` flight-recorder dump.
    fn observe(&mut self, t: f64) {
        if self.injected_at.is_some() && self.detected_at.is_none() && self.oracle.total_violations() > 0 {
            self.detected_at = Some(t);
            if let Some(a) = self.assembler.as_deref_mut() {
                a.force_dump("oracle_violation", t);
            }
        }
    }
}

impl SimHook for MutatingHook<'_> {
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {
        self.oracle.on_attach(t, reason, serving);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_attach(t, reason, serving);
        }
        self.observe(t);
    }

    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {
        self.oracle.on_decision(t, action);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_decision(t, action);
        }
        self.observe(t);
    }

    fn on_ho_command(&mut self, t: f64) {
        if self.kind == MutationKind::DropHoCommand && self.armed(t) {
            self.injected_at = Some(t);
            return;
        }
        if self.kind == MutationKind::OutOfOrderSpan && self.armed(t) {
            // stash the command; it is re-delivered after the completion
            self.injected_at = Some(t);
            self.held_command = Some(t);
            return;
        }
        self.oracle.on_ho_command(t);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_ho_command(t);
        }
        self.observe(t);
    }

    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        if self.kind == MutationKind::DropHoComplete && self.armed(t) {
            self.injected_at = Some(t);
            return;
        }
        self.oracle.on_ho_complete(t, rec, serving);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_ho_complete(t, rec, serving);
        }
        if let Some(ct) = self.held_command.take() {
            // the stale command lands after its own completion
            self.oracle.on_ho_command(ct);
            if let Some(a) = self.assembler.as_deref_mut() {
                a.on_ho_command(ct);
            }
        }
        self.observe(t);
    }

    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.oracle.on_ho_failure(t, rec, serving);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_ho_failure(t, rec, serving);
        }
        if let Some(ct) = self.held_command.take() {
            self.oracle.on_ho_command(ct);
            if let Some(a) = self.assembler.as_deref_mut() {
                a.on_ho_command(ct);
            }
        }
        self.observe(t);
    }

    fn on_sleep(&mut self, from_tick: u64, skipped: u64) {
        self.oracle.on_sleep(from_tick, skipped);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_sleep(from_tick, skipped);
        }
    }

    fn on_tick(&mut self, view: &TickView) {
        let mut view = *view;
        if self.kind == MutationKind::OversleptUe {
            if self.armed(view.t) {
                self.injected_at = Some(view.t);
                // sanction 2 slept ticks chained from the last delivered
                // tick, then go dark for 3: the wake tick arrives one tick
                // beyond what the declaration covers
                self.on_sleep(view.tick - 1, 2);
                self.swallow_ticks = 3;
            }
            if self.swallow_ticks > 0 {
                self.swallow_ticks -= 1;
                return;
            }
        }
        match self.kind {
            MutationKind::SwapServingLegs if self.armed(view.t) && view.serving.lte != view.serving.nr => {
                self.injected_at = Some(view.t);
                view.serving = ServingCells { lte: view.serving.nr, nr: view.serving.lte };
            }
            MutationKind::RewindClock if self.armed(view.t) => {
                self.injected_at = Some(view.t);
                view.t -= 5.0;
            }
            MutationKind::PhantomReattach if self.armed(view.t) && view.serving.lte.is_some() => {
                self.injected_at = Some(view.t);
                // a reattach to the very cell being served: real RLF recovery
                // must pick a different cell
                let reason = AttachReason::Reattach { leg: fiveg_ran::RadioTech::Lte, rlf: true };
                self.oracle.on_attach(view.t, reason, view.serving);
                if let Some(a) = self.assembler.as_deref_mut() {
                    a.on_attach(view.t, reason, view.serving);
                }
            }
            _ => {}
        }
        let real_t = view.t.max(self.injected_at.unwrap_or(view.t));
        self.oracle.on_tick(&view);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_tick(&view);
        }
        self.observe(real_t);
    }

    fn on_run_end(&mut self, t: f64, serving: ServingCells, phase: HoPhase, queued: usize) {
        self.oracle.on_run_end(t, serving, phase, queued);
        if let Some(a) = self.assembler.as_deref_mut() {
            a.on_run_end(t, serving, phase, queued);
        }
        self.observe(t);
    }
}

/// Outcome of one [`mutation_self_test`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationReport {
    /// Which corruption was applied.
    pub kind: MutationKind,
    /// When the corruption fired (None = the run offered no eligible event,
    /// which is itself a test failure).
    pub injected_at: Option<f64>,
    /// When the oracle first flagged anything after the injection.
    pub detected_at: Option<f64>,
    /// Total violations the oracle reported.
    pub violations: u64,
}

impl MutationReport {
    /// True when the corruption fired and the oracle caught it within
    /// `max_latency_s` of sim-time.
    pub fn caught_within(&self, max_latency_s: f64) -> bool {
        match (self.injected_at, self.detected_at) {
            (Some(i), Some(d)) => d - i <= max_latency_s && self.violations > 0,
            _ => false,
        }
    }
}

/// Runs one mutated NSA freeway scenario and reports whether the oracle
/// caught the corruption. Deterministic in `seed`.
pub fn mutation_self_test(kind: MutationKind, seed: u64) -> MutationReport {
    mutation_self_test_traced(kind, seed).0
}

/// [`mutation_self_test`] with a [`SpanAssembler`] riding on the same
/// corrupted stream. The returned [`SpanLog`] carries the assembler's view:
/// its anomalies prove the span layer flags impossible event orders, and
/// the oracle's first violation leaves an `oracle_violation` flight-recorder
/// dump in `log.dumps`.
pub fn mutation_self_test_traced(kind: MutationKind, seed: u64) -> (MutationReport, SpanLog) {
    let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, seed).duration_s(180.0).sample_hz(10.0).build();
    let mut oracle = Oracle::new(Arch::Nsa, seed);
    let mut asm = SpanAssembler::new(0, Arch::Nsa);
    let (injected_at, detected_at) = {
        let mut hook = MutatingHook::new(&mut oracle, kind, 30.0).with_assembler(&mut asm);
        engine::run_hooked(&s, &Telemetry::disabled(), &mut hook);
        (hook.injected_at(), hook.detected_at())
    };
    let report = MutationReport { kind, injected_at, detected_at, violations: oracle.total_violations() };
    (report, asm.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Detection bound: five ticks of the 10 Hz self-test scenario.
    const MAX_LATENCY_S: f64 = 0.5;

    #[test]
    fn every_mutation_is_caught_within_five_ticks() {
        for kind in MutationKind::ALL {
            let r = mutation_self_test(kind, 1);
            assert!(r.injected_at.is_some(), "{}: mutation never fired", kind.name());
            assert!(
                r.caught_within(MAX_LATENCY_S),
                "{}: injected at {:?}, detected at {:?} ({} violations)",
                kind.name(),
                r.injected_at,
                r.detected_at,
                r.violations
            );
        }
    }

    /// The overslept UE is caught *at the wake tick* — the first tick the
    /// hook stream delivers after the under-declared gap, i.e. within one
    /// wake, not merely within the five-tick bound above.
    #[test]
    fn overslept_ue_is_caught_at_the_wake_tick() {
        let r = mutation_self_test(MutationKind::OversleptUe, 1);
        let i = r.injected_at.expect("mutation never fired");
        let d = r.detected_at.expect("oracle never caught it");
        // three ticks go dark at 10 Hz, so the wake tick lands 0.3 s after
        // the injection; detection any later than that missed the wake
        assert!((d - i - 0.3).abs() < 1e-9, "injected at {i}, detected at {d}: not the wake tick");
        assert!(r.violations > 0);
    }

    #[test]
    fn unmutated_control_run_is_clean() {
        // same scenario, no corruption: the oracle must stay silent, or the
        // detection results above mean nothing
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 1).duration_s(180.0).sample_hz(10.0).build();
        let mut oracle = Oracle::new(Arch::Nsa, 1);
        engine::run_hooked(&s, &Telemetry::disabled(), &mut oracle);
        assert!(oracle.is_clean(), "{:?}", oracle.violations());
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<_> = MutationKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MutationKind::ALL.len());
    }

    /// The out-of-order stream (completion delivered before its command) is
    /// flagged by the span assembler — anomalies recorded, the corrupted
    /// span abandoned, nothing fabricated — and the oracle violation leaves
    /// a flight-recorder dump with full phase timelines.
    #[test]
    fn out_of_order_span_is_flagged_not_fabricated() {
        use fiveg_trace::SpanOutcome;

        let (r, log) = mutation_self_test_traced(MutationKind::OutOfOrderSpan, 1);
        assert!(r.injected_at.is_some(), "mutation never fired");
        assert!(
            r.caught_within(MAX_LATENCY_S),
            "injected at {:?}, detected at {:?} ({} violations)",
            r.injected_at,
            r.detected_at,
            r.violations
        );

        // the assembler must notice the causality break...
        assert!(!log.anomalies.is_empty(), "assembler absorbed an out-of-order stream silently");
        let kinds: Vec<&str> = log.anomalies.iter().map(|a| a.kind).collect();
        assert!(
            kinds.contains(&"complete_without_command") || kinds.contains(&"complete_without_decision"),
            "no completion-order anomaly in {kinds:?}"
        );

        // ...and must not paper over it with a fabricated span: the clean
        // control run completes strictly more spans
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 1).duration_s(180.0).sample_hz(10.0).build();
        let (_, clean) = fiveg_trace::trace_run(&s, &Telemetry::disabled());
        assert!(clean.anomalies.is_empty(), "{:?}", clean.anomalies);
        assert!(
            log.count(SpanOutcome::Completed) < clean.count(SpanOutcome::Completed),
            "mutated run completed {} spans, clean run {}",
            log.count(SpanOutcome::Completed),
            clean.count(SpanOutcome::Completed)
        );

        // the oracle violation snapshots the flight recorder
        let dump = log.dumps.iter().find(|d| d.reason == "oracle_violation").expect("no oracle_violation dump");
        assert!(dump.jsonl.contains("\"schema\":\"fiveg-flightrec/v1\""), "{}", dump.jsonl);
        assert!(dump.jsonl.contains("\"prep_ms\":") && dump.jsonl.contains("\"exec_ms\":"), "{}", dump.jsonl);
    }

    /// A clean hooked run produces zero anomalies for every architecture —
    /// the assembler's causal model matches the real state machine,
    /// including the NSA compound chain.
    #[test]
    fn clean_runs_assemble_without_anomalies() {
        for arch in [Arch::Lte, Arch::Nsa, Arch::Sa] {
            let s = ScenarioBuilder::freeway(Carrier::OpY, arch, 6.0, 7).duration_s(120.0).sample_hz(10.0).build();
            let (trace, log) = fiveg_trace::trace_run(&s, &Telemetry::disabled());
            assert!(log.anomalies.is_empty(), "{arch:?}: {:?}", log.anomalies);
            // every committed HO in the trace has exactly one completed span
            assert_eq!(
                log.count(fiveg_trace::SpanOutcome::Completed),
                trace.handovers.len() as u64,
                "{arch:?}: span/record count mismatch"
            );
        }
    }
}
