//! The unit of oracle output: one invariant breach with enough context to
//! reproduce it.

/// One invariant violation. Ordered by occurrence; the oracle keeps the
/// first [`crate::shadow::Oracle::MAX_KEPT`] and counts the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable snake_case name of the broken invariant (e.g.
    /// `"phase_ordering"`, `"leg_consistency"`, `"counter_algebra"`).
    pub invariant: &'static str,
    /// Tick ordinal at which the breach was observed (0 for pre-/post-run
    /// checks that have no tick context).
    pub tick: u64,
    /// Sim-time of the breach, s.
    pub t: f64,
    /// Scenario seed, so the message alone identifies the run.
    pub seed: u64,
    /// What exactly went wrong, with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] seed={} tick={} t={:.3}s: {}", self.invariant, self.seed, self.tick, self.t, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_repro_context() {
        let v = Violation {
            invariant: "phase_ordering",
            tick: 42,
            t: 4.2,
            seed: 7,
            detail: "HO command without preparation".into(),
        };
        let s = v.to_string();
        for needle in ["phase_ordering", "seed=7", "tick=42", "t=4.200s", "command without preparation"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
