//! The post-run half of the oracle: consistency checks over a finished
//! [`Trace`], the telemetry counter algebra, the event journal, and the
//! serde round-trip identity.
//!
//! These complement the live shadow checks ([`crate::shadow::Oracle`]):
//! the shadow watches transitions as they happen; this module checks the
//! *artifacts* a run leaves behind — the things every figure and benchmark
//! in the repo is computed from.

use crate::violation::Violation;
use fiveg_sim::{FaultConfig, Telemetry, Trace};
use std::collections::BTreeSet;

/// Options for [`check_trace`].
#[derive(Debug, Clone, Copy)]
pub struct CheckOpts {
    /// Serialize → deserialize → re-serialize the trace and require byte
    /// identity. Costs a full serde round-trip per call; disable in
    /// environments without a working `serde_json` (the offline stub
    /// harness).
    pub check_roundtrip: bool,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts { check_roundtrip: true }
    }
}

/// Physical RSRP bounds, dBm (the `Rrs` clamp range).
const RSRP_BOUNDS: (f64, f64) = (-140.0, -44.0);
/// Physical RSRQ bounds, dB.
const RSRQ_BOUNDS: (f64, f64) = (-20.0, -3.0);
/// Physical SINR bounds, dB.
const SINR_BOUNDS: (f64, f64) = (-20.0, 40.0);
/// Detail cap: a systematically broken trace would otherwise report one
/// violation per sample.
const MAX_DETAILED: usize = 64;

struct Collector {
    seed: u64,
    kept: Vec<Violation>,
    total: u64,
}

impl Collector {
    fn push(&mut self, invariant: &'static str, t: f64, detail: String) {
        self.total += 1;
        if self.kept.len() < MAX_DETAILED {
            self.kept.push(Violation { invariant, tick: 0, t, seed: self.seed, detail });
        }
    }

    fn finish(mut self) -> Vec<Violation> {
        let overflow = self.total - self.kept.len() as u64;
        if overflow > 0 {
            self.kept.push(Violation {
                invariant: "violations_truncated",
                tick: 0,
                t: 0.0,
                seed: self.seed,
                detail: format!("{overflow} further violations suppressed"),
            });
        }
        self.kept
    }
}

/// Checks every post-run invariant of `trace`. `faults` must be the config
/// the run actually used (pass the scenario's `faults`; clamping is applied
/// here). `tele` enables the counter-algebra and journal checks when it is
/// the enabled handle the run recorded into; pass `None` for uninstrumented
/// runs. Returns all violations found (empty = consistent).
pub fn check_trace(trace: &Trace, faults: FaultConfig, tele: Option<&Telemetry>, opts: &CheckOpts) -> Vec<Violation> {
    let mut c = Collector { seed: trace.meta.seed, kept: Vec::new(), total: 0 };
    check_samples(trace, &mut c);
    check_handovers(trace, &mut c);
    check_reports(trace, &mut c);
    if let Some(tele) = tele {
        if tele.is_enabled() {
            check_counters(trace, faults, tele, &mut c);
            check_journal(trace, tele, &mut c);
        }
    }
    if opts.check_roundtrip {
        check_roundtrip(trace, &mut c);
    }
    c.finish()
}

fn check_rrs_bounds(c: &mut Collector, t: f64, what: &str, rrs: &fiveg_radio::Rrs) {
    let fields = [
        ("rsrp_dbm", rrs.rsrp_dbm, RSRP_BOUNDS),
        ("rsrq_db", rrs.rsrq_db, RSRQ_BOUNDS),
        ("sinr_db", rrs.sinr_db, SINR_BOUNDS),
    ];
    for (name, v, (lo, hi)) in fields {
        if !v.is_finite() || v < lo - 1e-9 || v > hi + 1e-9 {
            c.push("rrs_bounds", t, format!("{what} {name}={v} outside [{lo}, {hi}]"));
        }
    }
}

fn check_samples(trace: &Trace, c: &mut Collector) {
    let known: BTreeSet<u32> = trace.cells.iter().map(|e| e.cell).collect();
    let mut last_t = f64::NEG_INFINITY;
    let mut last_dist = f64::NEG_INFINITY;
    for s in &trace.samples {
        if s.t <= last_t {
            c.push("sample_times", s.t, format!("sample t={} did not advance past {last_t}", s.t));
        }
        last_t = s.t;
        if s.dist_m < last_dist - 1e-9 {
            c.push("sample_distance", s.t, format!("dist_m={} ran backwards past {last_dist}", s.dist_m));
        }
        last_dist = s.dist_m;
        for (leg, id) in [("lte", s.lte_cell), ("nr", s.nr_cell)] {
            if let Some(id) = id {
                if !known.contains(&id) {
                    c.push("cell_dict", s.t, format!("serving {leg} cell {id} missing from the cell dictionary"));
                }
            }
        }
        if let Some(rrs) = &s.lte_rrs {
            check_rrs_bounds(c, s.t, "lte serving", rrs);
        }
        if let Some(rrs) = &s.nr_rrs {
            check_rrs_bounds(c, s.t, "nr serving", rrs);
        }
        for (id, rrs) in s.lte_neighbors.iter().chain(s.nr_neighbors.iter()) {
            if !known.contains(id) {
                c.push("cell_dict", s.t, format!("neighbor cell {id} missing from the cell dictionary"));
            }
            check_rrs_bounds(c, s.t, "neighbor", rrs);
        }
        if !s.capacity_mbps.is_finite() || s.capacity_mbps < 0.0 {
            c.push("capacity_bounds", s.t, format!("capacity_mbps={}", s.capacity_mbps));
        }
        if !s.base_rtt_ms.is_finite() || s.base_rtt_ms < 0.0 {
            c.push("capacity_bounds", s.t, format!("base_rtt_ms={}", s.base_rtt_ms));
        }
    }
}

fn check_handovers(trace: &Trace, c: &mut Collector) {
    let mut last_complete = f64::NEG_INFINITY;
    for h in &trace.handovers {
        if !(h.t_decision < h.t_command && h.t_command < h.t_complete) {
            c.push(
                "record_times",
                h.t_complete,
                format!(
                    "{}: t_decision={} t_command={} t_complete={} not strictly ordered",
                    h.ho_type.acronym(),
                    h.t_decision,
                    h.t_command,
                    h.t_complete
                ),
            );
        }
        if h.t_complete < last_complete - 1e-9 {
            c.push(
                "record_times",
                h.t_complete,
                format!("{} completed at {} after a later HO at {last_complete}", h.ho_type.acronym(), h.t_complete),
            );
        }
        last_complete = last_complete.max(h.t_complete);
        if h.arch != trace.meta.arch {
            c.push("record_times", h.t_complete, format!("{} recorded arch {:?}", h.ho_type.acronym(), h.arch));
        }
    }
}

fn check_reports(trace: &Trace, c: &mut Collector) {
    let mut last_t = f64::NEG_INFINITY;
    for r in &trace.reports {
        if r.t < last_t - 1e-9 {
            c.push("report_times", r.t, format!("report t={} ran backwards past {last_t}", r.t));
        }
        last_t = last_t.max(r.t);
    }
}

/// The counter algebra: telemetry counters and trace statistics are two
/// recordings of the same run and must agree exactly.
fn check_counters(trace: &Trace, faults: FaultConfig, tele: &Telemetry, c: &mut Collector) {
    let snap = tele.counter_snapshot();
    let exact: [(&str, u64, u64); 5] = [
        ("sim.ticks", snap.get("sim.ticks"), trace.samples.len() as u64),
        ("sim.reports", snap.get("sim.reports"), trace.reports.len() as u64),
        ("sim.handovers", snap.get("sim.handovers"), trace.handovers.len() as u64),
        ("sim.rlf", snap.get("sim.rlf"), trace.rlf_count),
        ("faults.ho_failure", snap.get("faults.ho_failure"), trace.ho_failures),
    ];
    for (name, got, want) in exact {
        if got != want {
            c.push("counter_algebra", 0.0, format!("{name}={got} but the trace says {want}"));
        }
    }
    let per_type = snap.sum_prefix("ho.");
    if per_type != trace.handovers.len() as u64 {
        c.push(
            "counter_algebra",
            0.0,
            format!("per-type ho.* counters sum to {per_type}, trace has {} handovers", trace.handovers.len()),
        );
    }
    // every started HO either committed, failed, or is still in flight at
    // run end (at most one)
    let started = snap.get("ran.ho_started");
    let finished = trace.handovers.len() as u64 + trace.ho_failures;
    if started < finished || started > finished + 1 {
        c.push(
            "counter_algebra",
            0.0,
            format!("ran.ho_started={started} vs {} commits + {} failures", trace.handovers.len(), trace.ho_failures),
        );
    }
    // fault counters must be silent when the (clamped) probability is zero
    let f = faults.clamped();
    if f.mr_loss_prob == 0.0 && snap.get("faults.mr_loss") != 0 {
        c.push("counter_algebra", 0.0, format!("faults.mr_loss={} with mr_loss_prob=0", snap.get("faults.mr_loss")));
    }
    if f.ho_failure_prob == 0.0 && trace.ho_failures != 0 {
        c.push("counter_algebra", 0.0, format!("{} HO failures with ho_failure_prob=0", trace.ho_failures));
    }
}

/// Journal sanity: sequence numbers are strictly increasing, sim-time is
/// monotone up to one tick interval (HO events are journaled at the tick
/// that processes them but stamped with their precise completion time, which
/// falls inside the preceding interval), and (when nothing was dropped) the
/// journaled HO story matches the trace.
fn check_journal(trace: &Trace, tele: &Telemetry, c: &mut Collector) {
    let dt = match trace.samples.as_slice() {
        [a, b, ..] => b.t - a.t,
        _ => 0.0,
    };
    let entries = tele.events();
    let mut last_t = f64::NEG_INFINITY;
    let mut last_seq = None::<u64>;
    let mut commits = 0u64;
    let mut failures = 0u64;
    let mut rlfs = 0u64;
    for e in &entries {
        if e.t < last_t - dt - 1e-9 {
            c.push(
                "journal_order",
                e.t,
                format!("journal t={} ran {dt}+ backwards past {last_t} (seq {})", e.t, e.seq),
            );
        }
        last_t = last_t.max(e.t);
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                c.push("journal_order", e.t, format!("journal seq {} did not advance past {prev}", e.seq));
            }
        }
        last_seq = Some(e.seq);
        match e.event.kind() {
            "ho_commit" => commits += 1,
            "ho_failure" => failures += 1,
            "rlf" => rlfs += 1,
            _ => {}
        }
    }
    if tele.journal_dropped() == 0 {
        let story = [
            ("ho_commit", commits, trace.handovers.len() as u64),
            ("ho_failure", failures, trace.ho_failures),
            ("rlf", rlfs, trace.rlf_count),
        ];
        for (kind, got, want) in story {
            if got != want {
                c.push("journal_story", 0.0, format!("journal has {got} {kind} events, trace says {want}"));
            }
        }
    }
}

/// Save/load identity: the JSON codec must neither lose nor invent data.
fn check_roundtrip(trace: &Trace, c: &mut Collector) {
    let first = match serde_json::to_string(trace) {
        Ok(s) => s,
        Err(e) => {
            c.push("trace_roundtrip", 0.0, format!("serialize failed: {e}"));
            return;
        }
    };
    let back: Trace = match serde_json::from_str(&first) {
        Ok(t) => t,
        Err(e) => {
            c.push("trace_roundtrip", 0.0, format!("deserialize failed: {e}"));
            return;
        }
    };
    if &back != trace {
        c.push("trace_roundtrip", 0.0, "trace != deserialize(serialize(trace))".into());
        return;
    }
    match serde_json::to_string(&back) {
        Ok(second) if second != first => {
            c.push("trace_roundtrip", 0.0, "re-serialized bytes differ from the first encoding".into());
        }
        Err(e) => c.push("trace_roundtrip", 0.0, format!("re-serialize failed: {e}")),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::{ScenarioBuilder, TelemetryConfig};

    /// Offline-safe opts: every oracle unit test must run under the stub
    /// harness, where serde_json is a compile-only stand-in.
    fn no_roundtrip() -> CheckOpts {
        CheckOpts { check_roundtrip: false }
    }

    #[test]
    fn clean_instrumented_run_passes_all_checks() {
        let mut s =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 51).duration_s(180.0).sample_hz(10.0).build();
        s.telemetry = TelemetryConfig::deterministic();
        let tele = Telemetry::new(s.telemetry);
        let tr = s.run_instrumented(&tele);
        let v = check_trace(&tr, s.faults, Some(&tele), &no_roundtrip());
        assert!(v.is_empty(), "{:?}", v.iter().map(|x| x.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn faulty_instrumented_run_passes_all_checks() {
        let mut s =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 52).duration_s(180.0).sample_hz(10.0).build();
        s.faults = FaultConfig { mr_loss_prob: 0.3, ho_failure_prob: 0.5 };
        s.telemetry = TelemetryConfig::deterministic();
        let tele = Telemetry::new(s.telemetry);
        let tr = s.run_instrumented(&tele);
        let v = check_trace(&tr, s.faults, Some(&tele), &no_roundtrip());
        assert!(v.is_empty(), "{:?}", v.iter().map(|x| x.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn corrupted_sample_times_are_flagged() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Lte, 3.0, 53).duration_s(60.0).sample_hz(10.0).build();
        let mut tr = s.run();
        let n = tr.samples.len();
        tr.samples[n / 2].t = tr.samples[n / 2 - 1].t; // stall the clock
        let v = check_trace(&tr, s.faults, None, &no_roundtrip());
        assert!(v.iter().any(|x| x.invariant == "sample_times"), "{v:?}");
    }

    #[test]
    fn corrupted_rrs_is_flagged() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Lte, 3.0, 54).duration_s(60.0).sample_hz(10.0).build();
        let mut tr = s.run();
        let sample = tr.samples.iter_mut().find(|s| s.lte_rrs.is_some()).expect("an attached sample");
        sample.lte_rrs.as_mut().unwrap().rsrp_dbm = 17.0; // transmit-side power at the UE
        let v = check_trace(&tr, s.faults, None, &no_roundtrip());
        assert!(v.iter().any(|x| x.invariant == "rrs_bounds"), "{v:?}");
    }

    #[test]
    fn corrupted_handover_ordering_is_flagged() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 55).duration_s(180.0).sample_hz(10.0).build();
        let mut tr = s.run();
        assert!(!tr.handovers.is_empty());
        tr.handovers[0].t_command = tr.handovers[0].t_complete + 1.0;
        let v = check_trace(&tr, s.faults, None, &no_roundtrip());
        assert!(v.iter().any(|x| x.invariant == "record_times"), "{v:?}");
    }

    #[test]
    fn counter_mismatch_is_flagged() {
        let mut s =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 56).duration_s(180.0).sample_hz(10.0).build();
        s.telemetry = TelemetryConfig::deterministic();
        let tele = Telemetry::new(s.telemetry);
        let mut tr = s.run_instrumented(&tele);
        tr.samples.pop(); // now sim.ticks != samples.len()
        let v = check_trace(&tr, s.faults, Some(&tele), &no_roundtrip());
        assert!(v.iter().any(|x| x.invariant == "counter_algebra"), "{v:?}");
    }

    #[test]
    fn detail_flood_is_truncated() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Lte, 3.0, 57).duration_s(120.0).sample_hz(10.0).build();
        let mut tr = s.run();
        for sample in &mut tr.samples {
            sample.capacity_mbps = -1.0;
        }
        let v = check_trace(&tr, s.faults, None, &no_roundtrip());
        assert!(v.len() <= MAX_DETAILED + 1);
        assert!(v.last().unwrap().invariant == "violations_truncated", "{:?}", v.last());
    }
}
