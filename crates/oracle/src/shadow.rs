//! The live half of the oracle: an independent shadow state machine driven
//! by the engine's [`SimHook`] stream.
//!
//! The shadow re-derives, from the hook events alone, what the serving
//! cells and the HO phase *must* be — then compares against what the engine
//! reports at every tick. It deliberately re-implements the Table 2
//! transition semantics instead of calling into `fiveg-ran`, so a bug in
//! the state machine cannot hide itself.

use crate::violation::Violation;
use fiveg_radio::rrs::NOISE_FLOOR_DBM;
use fiveg_radio::Rrs;
use fiveg_ran::{Arch, HandoverRecord, HoPhase, HoType, RadioTech};
use fiveg_rrc::ReconfigAction;
use fiveg_sim::{AttachReason, ServingCells, SimHook, TickView};

/// Physical RSRP bounds, dBm (the `Rrs` clamp range).
const RSRP_BOUNDS: (f64, f64) = (-140.0, -44.0);
/// Physical RSRQ bounds, dB.
const RSRQ_BOUNDS: (f64, f64) = (-20.0, -3.0);
/// Physical SINR bounds, dB.
const SINR_BOUNDS: (f64, f64) = (-20.0, 40.0);
/// Noise-floor sanity slack, dB: SINR can exceed `rsrp - NOISE_FLOOR_DBM`
/// only by the bandwidth correction of the narrowest deployable channel.
const NOISE_SLACK_DB: f64 = 12.0;
/// Float comparison slack for sim-time, s.
const T_EPS: f64 = 1e-9;

/// Where the shadow machine believes the HO procedure is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowPhase {
    Idle,
    Preparing,
    Executing,
}

impl ShadowPhase {
    fn as_ho_phase(self) -> HoPhase {
        match self {
            ShadowPhase::Idle => HoPhase::Idle,
            ShadowPhase::Preparing => HoPhase::Preparing,
            ShadowPhase::Executing => HoPhase::Executing,
        }
    }
}

/// The live invariant checker. Plug into [`fiveg_sim::engine::run_hooked`];
/// afterwards [`Oracle::violations`] holds everything it caught.
pub struct Oracle {
    arch: Arch,
    seed: u64,
    serving: ServingCells,
    phase: ShadowPhase,
    /// HO type currently being prepared/executed, per the shadow model.
    in_flight: Option<HoType>,
    /// Chained follow-up (NSA forced-SCGR → LTEH) not yet begun.
    chain_next: Option<HoType>,
    /// Set on the tick a completion left a chain pending: the machine must
    /// still report Idle at that tick's end (deferred chaining).
    chain_armed: bool,
    /// Set once the shadow has advanced into the chained preparation but the
    /// machine has not stepped yet — it still reports Idle with the
    /// follow-up queued. Only [`SimHook::on_run_end`] can observe this gap.
    chain_prep_pending: bool,
    saw_initial_attach: bool,
    last_t: f64,
    last_tick_t: f64,
    last_tick: u64,
    /// Ticks a scheduled engine declared slept via [`SimHook::on_sleep`]
    /// since the last observed tick. The next tick may — and must — jump
    /// by exactly this much beyond the usual `+1`; any other gap is an
    /// overslept (or time-travelling) UE.
    sanctioned_gap: u64,
    violations: Vec<Violation>,
    total_violations: u64,
    /// Event tallies, for the post-run counter cross-checks.
    pub decisions: u64,
    /// HO commands observed.
    pub commands: u64,
    /// Committed HOs observed.
    pub completions: u64,
    /// Fault-injected HO failures observed.
    pub failures: u64,
    /// RLF/idle-leg reattaches observed.
    pub reattaches: u64,
}

impl Oracle {
    /// Violations kept verbatim; later ones are only counted. A broken run
    /// repeats the same breach every tick — keeping them all would just
    /// bloat the report.
    pub const MAX_KEPT: usize = 32;

    /// A fresh oracle for one run of a scenario with the given architecture
    /// and seed (the seed only annotates violations).
    pub fn new(arch: Arch, seed: u64) -> Oracle {
        Oracle {
            arch,
            seed,
            serving: ServingCells { lte: None, nr: None },
            phase: ShadowPhase::Idle,
            in_flight: None,
            chain_next: None,
            chain_armed: false,
            chain_prep_pending: false,
            saw_initial_attach: false,
            last_t: f64::NEG_INFINITY,
            last_tick_t: f64::NEG_INFINITY,
            last_tick: 0,
            sanctioned_gap: 0,
            violations: Vec::new(),
            total_violations: 0,
            decisions: 0,
            commands: 0,
            completions: 0,
            failures: 0,
            reattaches: 0,
        }
    }

    /// The violations caught so far (first [`Oracle::MAX_KEPT`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations including ones beyond the retention cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Consumes the oracle, yielding the retained violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Scenario seed this oracle annotates violations with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn report(&mut self, invariant: &'static str, t: f64, detail: String) {
        self.total_violations += 1;
        if self.violations.len() < Self::MAX_KEPT {
            self.violations.push(Violation { invariant, tick: self.last_tick, t, seed: self.seed, detail });
        }
    }

    /// Every hook shares one clock: sim-time must never run backwards.
    fn observe_time(&mut self, t: f64) {
        if t < self.last_t - T_EPS {
            self.report("monotonic_time", t, format!("hook time {t} ran backwards past {}", self.last_t));
        }
        if t > self.last_t {
            self.last_t = t;
        }
    }

    fn check_rrs(&mut self, t: f64, leg: &str, rrs: &Rrs) {
        let fields = [
            ("rsrp_dbm", rrs.rsrp_dbm, RSRP_BOUNDS),
            ("rsrq_db", rrs.rsrq_db, RSRQ_BOUNDS),
            ("sinr_db", rrs.sinr_db, SINR_BOUNDS),
        ];
        for (name, v, (lo, hi)) in fields {
            if !v.is_finite() || v < lo - T_EPS || v > hi + T_EPS {
                self.report("rrs_bounds", t, format!("{leg} {name}={v} outside [{lo}, {hi}]"));
            }
        }
        // noise floor sanity: SINR is bounded by signal over thermal noise
        let ceiling = rrs.rsrp_dbm - NOISE_FLOOR_DBM + NOISE_SLACK_DB;
        if rrs.sinr_db > ceiling + T_EPS {
            self.report(
                "noise_floor",
                t,
                format!(
                    "{leg} sinr_db={} exceeds rsrp-noise ceiling {ceiling:.1} (rsrp={})",
                    rrs.sinr_db, rrs.rsrp_dbm
                ),
            );
        }
    }

    /// Leg-consistency of a serving pair under this run's architecture.
    fn check_legs(&mut self, t: f64, s: ServingCells, site: &str) {
        match self.arch {
            Arch::Lte => {
                if s.nr.is_some() {
                    self.report("leg_consistency", t, format!("{site}: NR cell {:?} under pure-LTE arch", s.nr));
                }
            }
            Arch::Sa => {
                if s.lte.is_some() {
                    self.report("leg_consistency", t, format!("{site}: LTE cell {:?} under SA arch", s.lte));
                }
            }
            Arch::Nsa => {
                if s.nr.is_some() && s.lte.is_none() {
                    self.report("leg_consistency", t, format!("{site}: NSA SCG {:?} with no LTE anchor", s.nr));
                }
            }
        }
    }

    /// Per-type Table 2 transition check for a committed HO.
    fn check_transition(&mut self, t: f64, rec: &HandoverRecord, after: ServingCells) {
        let before = self.serving;
        let ho = rec.ho_type;
        let lte_unchanged = before.lte == after.lte;
        let nr_unchanged = before.nr == after.nr;
        let fail = |detail: String| -> Option<String> { Some(detail) };
        let problem: Option<String> = match ho {
            HoType::Scga => {
                if before.nr.is_some() {
                    fail(format!("SCGA with an SCG already attached ({:?})", before.nr))
                } else if after.nr.is_none() {
                    fail("SCGA committed but no SCG attached".into())
                } else if !lte_unchanged {
                    fail(format!("SCGA moved the LTE anchor {:?} → {:?}", before.lte, after.lte))
                } else {
                    None
                }
            }
            HoType::Scgr => {
                if before.nr.is_none() {
                    fail("SCGR with no SCG attached".into())
                } else if after.nr.is_some() {
                    fail(format!("SCGR left an SCG attached ({:?})", after.nr))
                } else if !lte_unchanged {
                    fail(format!("SCGR moved the LTE anchor {:?} → {:?}", before.lte, after.lte))
                } else {
                    None
                }
            }
            HoType::Scgm | HoType::Scgc => {
                if before.nr.is_none() {
                    fail(format!("{} with no SCG attached", ho.acronym()))
                } else if after.nr.is_none() {
                    fail(format!("{} dropped the SCG", ho.acronym()))
                } else if !lte_unchanged {
                    fail(format!("{} moved the LTE anchor {:?} → {:?}", ho.acronym(), before.lte, after.lte))
                } else {
                    None
                }
            }
            HoType::Mnbh => {
                if after.lte.is_none() {
                    fail("MNBH left no LTE anchor".into())
                } else if !nr_unchanged {
                    fail(format!("MNBH moved the SCG {:?} → {:?} (gNB must be kept)", before.nr, after.nr))
                } else {
                    None
                }
            }
            HoType::Lteh => {
                if before.nr.is_some() {
                    fail(format!("LTEH began with an SCG attached ({:?}); the SCGR must come first", before.nr))
                } else if after.nr.is_some() {
                    fail(format!("LTEH attached an SCG ({:?})", after.nr))
                } else if after.lte.is_none() {
                    fail("LTEH left no serving LTE cell".into())
                } else {
                    None
                }
            }
            HoType::Mcgh => {
                if after.nr.is_none() {
                    fail("MCGH left no serving NR cell".into())
                } else if after.lte.is_some() {
                    fail(format!("MCGH attached an LTE cell ({:?}) under SA", after.lte))
                } else {
                    None
                }
            }
        };
        if let Some(detail) = problem {
            self.report("ho_transition", t, detail);
        }
    }
}

impl SimHook for Oracle {
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {
        self.observe_time(t);
        match reason {
            AttachReason::Initial => {
                if self.saw_initial_attach {
                    self.report("attach_ordering", t, "second initial attach".into());
                }
                self.saw_initial_attach = true;
            }
            AttachReason::Reattach { leg, rlf } => {
                self.reattaches += 1;
                if self.phase != ShadowPhase::Idle || self.chain_next.is_some() {
                    self.report(
                        "phase_ordering",
                        t,
                        format!("reattach on {leg:?} while a HO is in flight ({:?})", self.phase),
                    );
                }
                match leg {
                    RadioTech::Lte => {
                        if self.arch == Arch::Sa {
                            self.report("leg_consistency", t, "LTE reattach under SA arch".into());
                        }
                        if serving.lte.is_none() {
                            self.report("attach_target", t, "LTE reattach to no cell".into());
                        }
                        if serving.lte == self.serving.lte {
                            self.report("attach_target", t, format!("LTE reattach to same cell {:?}", serving.lte));
                        }
                        if self.arch == Arch::Nsa && serving.nr.is_some() {
                            self.report(
                                "leg_consistency",
                                t,
                                format!("NSA anchor reattach must drop the SCG, kept {:?}", serving.nr),
                            );
                        }
                        if rlf != self.serving.lte.is_some() {
                            self.report(
                                "rlf_accounting",
                                t,
                                format!("rlf={rlf} but previous LTE serving was {:?}", self.serving.lte),
                            );
                        }
                    }
                    RadioTech::Nr => {
                        if self.arch != Arch::Sa {
                            self.report("leg_consistency", t, format!("NR reattach under {:?} arch", self.arch));
                        }
                        if serving.nr.is_none() {
                            self.report("attach_target", t, "NR reattach to no cell".into());
                        }
                        if serving.nr == self.serving.nr {
                            self.report("attach_target", t, format!("NR reattach to same cell {:?}", serving.nr));
                        }
                        if rlf != self.serving.nr.is_some() {
                            self.report(
                                "rlf_accounting",
                                t,
                                format!("rlf={rlf} but previous NR serving was {:?}", self.serving.nr),
                            );
                        }
                    }
                }
            }
        }
        self.check_legs(t, serving, "attach");
        self.serving = serving;
    }

    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {
        self.observe_time(t);
        self.decisions += 1;
        if self.phase != ShadowPhase::Idle || self.chain_next.is_some() {
            self.report("phase_ordering", t, format!("decision {action:?} while a HO is in flight ({:?})", self.phase));
        }
        // NSA anchor change that abandons the gNB: the machine begins a
        // forced SCGR and queues the LTEH behind it
        if self.arch == Arch::Nsa && self.serving.nr.is_some() && matches!(action, ReconfigAction::LteHandover { .. }) {
            self.in_flight = Some(HoType::Scgr);
            self.chain_next = Some(HoType::Lteh);
        } else {
            self.in_flight = Some(HoType::from_action(action));
            self.chain_next = None;
        }
        self.phase = ShadowPhase::Preparing;
    }

    fn on_ho_command(&mut self, t: f64) {
        self.observe_time(t);
        self.commands += 1;
        self.chain_prep_pending = false;
        if self.phase == ShadowPhase::Preparing {
            self.phase = ShadowPhase::Executing;
        } else {
            self.report("phase_ordering", t, format!("HO command without preparation (shadow {:?})", self.phase));
        }
    }

    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.observe_time(t);
        self.completions += 1;
        if self.phase != ShadowPhase::Executing {
            self.report("phase_ordering", t, format!("HO completion without execution (shadow {:?})", self.phase));
        }
        if let Some(expected) = self.in_flight {
            if rec.ho_type != expected {
                self.report(
                    "phase_ordering",
                    t,
                    format!("completed {} but {} was in flight", rec.ho_type.acronym(), expected.acronym()),
                );
            }
        }
        if !(rec.t_decision < rec.t_command && rec.t_command < rec.t_complete) {
            self.report(
                "record_times",
                t,
                format!(
                    "{}: t_decision={} t_command={} t_complete={} not strictly ordered",
                    rec.ho_type.acronym(),
                    rec.t_decision,
                    rec.t_command,
                    rec.t_complete
                ),
            );
        }
        if rec.t_complete > t + T_EPS {
            self.report("record_times", t, format!("completion reported at {t} before t_complete={}", rec.t_complete));
        }
        self.check_transition(t, rec, serving);
        self.check_legs(t, serving, rec.ho_type.acronym());
        self.serving = serving;
        self.phase = ShadowPhase::Idle;
        self.in_flight = None;
        if self.chain_next.is_some() {
            // deferred chaining: the machine must stay Idle until the next
            // step() call pops the queue
            self.chain_armed = true;
        }
    }

    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.observe_time(t);
        self.failures += 1;
        if self.phase != ShadowPhase::Executing {
            self.report("phase_ordering", t, format!("HO failure without execution (shadow {:?})", self.phase));
        }
        // rollback identity: a failed execution restores exactly the pre-HO
        // serving cells
        if serving != self.serving {
            self.report(
                "rollback_identity",
                t,
                format!("{} failure rolled back to {serving:?}, expected {:?}", rec.ho_type.acronym(), self.serving),
            );
        }
        self.serving = serving;
        self.phase = ShadowPhase::Idle;
        self.in_flight = None;
        // the engine aborts any chained follow-up on failure
        self.chain_next = None;
        self.chain_armed = false;
    }

    fn on_sleep(&mut self, from_tick: u64, skipped: u64) {
        // a sleep declaration must chain from the last tick this hook saw;
        // anything else means the engine lost track of where the UE was
        if from_tick != self.last_tick {
            self.report(
                "sleep_ordering",
                self.last_tick_t,
                format!("sleep declared from tick {from_tick} but the last observed tick was {}", self.last_tick),
            );
        }
        self.sanctioned_gap += skipped;
    }

    fn on_tick(&mut self, view: &TickView) {
        self.observe_time(view.t);
        // any tick after the chain-completion one means the machine has
        // stepped and the deferred follow-up is genuinely in flight
        self.chain_prep_pending = false;
        if view.t <= self.last_tick_t + T_EPS {
            self.report(
                "monotonic_time",
                view.t,
                format!("tick time {} did not advance past {}", view.t, self.last_tick_t),
            );
        }
        self.last_tick_t = view.t;
        // a scheduled engine may skip ticks, but only as many as it declared
        // asleep — an undeclared gap is an overslept UE, a short jump means
        // the engine stepped ticks it claimed to have slept through
        let expected = self.last_tick + 1 + self.sanctioned_gap;
        if view.tick != expected {
            let detail = if self.sanctioned_gap > 0 {
                format!(
                    "tick {} followed {} with {} ticks sanctioned asleep",
                    view.tick, self.last_tick, self.sanctioned_gap
                )
            } else {
                format!("tick {} followed {}", view.tick, self.last_tick)
            };
            self.report("tick_ordering", view.t, detail);
        }
        self.sanctioned_gap = 0;
        self.last_tick = view.tick;
        if !self.saw_initial_attach {
            self.report("attach_ordering", view.t, "tick before the initial attach".into());
        }

        if view.serving != self.serving {
            self.report(
                "serving_shadow",
                view.t,
                format!("engine serving {:?} != shadow {:?}", view.serving, self.serving),
            );
            // resync so one divergence does not cascade into a violation
            // per remaining tick
            self.serving = view.serving;
        }
        self.check_legs(view.t, view.serving, "tick");

        let expected_phase = self.phase.as_ho_phase();
        if view.phase != expected_phase {
            self.report(
                "phase_shadow",
                view.t,
                format!(
                    "engine phase {:?} != shadow {:?} (in flight {:?})",
                    view.phase, expected_phase, self.in_flight
                ),
            );
            // resync (mirrors serving_shadow above); the shadow cannot know
            // the in-flight type it missed
            self.phase = match view.phase {
                HoPhase::Idle => ShadowPhase::Idle,
                HoPhase::Preparing => ShadowPhase::Preparing,
                HoPhase::Executing => ShadowPhase::Executing,
            };
        }
        let expected_queued = usize::from(self.chain_next.is_some());
        if view.queued != expected_queued {
            self.report(
                "phase_shadow",
                view.t,
                format!("engine queue depth {} != shadow {expected_queued}", view.queued),
            );
        }
        if self.chain_armed {
            // the completion tick is over; from the next step() on, the
            // queued follow-up is in preparation
            self.chain_armed = false;
            self.chain_prep_pending = true;
            self.in_flight = self.chain_next.take();
            self.phase = ShadowPhase::Preparing;
        }

        if let Some(rrs) = &view.lte_rrs {
            if self.arch == Arch::Sa {
                self.report("leg_consistency", view.t, "LTE measurement under SA arch".into());
            }
            self.check_rrs(view.t, "lte", rrs);
        }
        if let Some(rrs) = &view.nr_rrs {
            if self.arch == Arch::Lte {
                self.report("leg_consistency", view.t, "NR measurement under pure-LTE arch".into());
            }
            self.check_rrs(view.t, "nr", rrs);
        }
        if !view.capacity_mbps.is_finite() || view.capacity_mbps < 0.0 {
            self.report("capacity_bounds", view.t, format!("capacity_mbps={}", view.capacity_mbps));
        }
    }

    fn on_run_end(&mut self, t: f64, serving: ServingCells, phase: HoPhase, queued: usize) {
        self.observe_time(t);
        if serving != self.serving {
            self.report("serving_shadow", t, format!("run ended serving {serving:?} != shadow {:?}", self.serving));
        }
        // a run may end mid-HO; the phase must still match the shadow. When
        // the run ends right on a chain-completion tick, the machine has not
        // stepped again, so the deferred follow-up is still queued.
        let (expected, expected_queued) = if self.chain_prep_pending {
            (HoPhase::Idle, 1)
        } else {
            (self.phase.as_ho_phase(), usize::from(self.chain_next.is_some()))
        };
        if phase != expected {
            self.report("phase_shadow", t, format!("run ended in {phase:?}, shadow expected {expected:?}"));
        }
        if queued != expected_queued {
            self.report("phase_shadow", t, format!("run ended with queue depth {queued}, shadow {expected_queued}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Carrier;
    use fiveg_sim::{engine, ScenarioBuilder, Telemetry};

    fn run_clean(arch: Arch, seed: u64) -> Oracle {
        let s = ScenarioBuilder::freeway(Carrier::OpY, arch, 6.0, seed).duration_s(180.0).sample_hz(10.0).build();
        let mut oracle = Oracle::new(arch, seed);
        engine::run_hooked(&s, &Telemetry::disabled(), &mut oracle);
        oracle
    }

    #[test]
    fn clean_runs_have_no_violations_per_arch() {
        for arch in [Arch::Lte, Arch::Nsa, Arch::Sa] {
            let oracle = run_clean(arch, 41);
            assert!(
                oracle.is_clean(),
                "{arch:?}: {:?}",
                oracle.violations().iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
            assert!(oracle.completions > 0, "{arch:?} run saw no handovers");
            assert_eq!(oracle.commands, oracle.completions + oracle.failures);
        }
    }

    #[test]
    fn faulty_runs_stay_clean_under_the_oracle() {
        // fault injection exercises rollback identity and chain aborts;
        // a correct engine must still satisfy every invariant
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 8.0, 42)
            .duration_s(240.0)
            .sample_hz(10.0)
            .faults(fiveg_sim::FaultConfig { mr_loss_prob: 0.2, ho_failure_prob: 0.5 })
            .build();
        let mut oracle = Oracle::new(Arch::Nsa, 42);
        engine::run_hooked(&s, &Telemetry::disabled(), &mut oracle);
        assert!(oracle.is_clean(), "{:?}", oracle.violations().iter().map(|v| v.to_string()).collect::<Vec<_>>());
        assert!(oracle.failures > 0, "p=0.5 must inject failures");
    }

    #[test]
    fn reference_engine_satisfies_the_same_invariants() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 4.0, 43).duration_s(120.0).sample_hz(10.0).build();
        let mut oracle = Oracle::new(Arch::Nsa, 43);
        engine::run_reference_hooked(&s, &Telemetry::disabled(), &mut oracle);
        assert!(oracle.is_clean(), "{:?}", oracle.violations().iter().map(|v| v.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn violation_cap_counts_overflow() {
        let mut o = Oracle::new(Arch::Nsa, 1);
        for i in 0..100 {
            o.report("rrs_bounds", i as f64, format!("synthetic {i}"));
        }
        assert_eq!(o.violations().len(), Oracle::MAX_KEPT);
        assert_eq!(o.total_violations(), 100);
        assert!(!o.is_clean());
    }
}
