//! Deterministic scenario fuzzer: seeded random cases over the route ×
//! carrier × arch × fault × predictor space, each run through the snapshot
//! engine, the naive reference engine *and* the event-driven fleet
//! scheduler differentially, under the full oracle.
//!
//! Everything is a pure function of `(fuzz_seed, index)` — same seed, same
//! cases, same verdicts, on any machine and any thread count. A failing
//! case shrinks ([`shrink`]) to a minimal still-failing configuration and
//! serializes to the corpus TOML dialect (`tests/corpus/*.toml`), which is
//! replayed by CI forever after. The TOML codec here is a deliberately tiny
//! `key = value` subset parsed with std only, so corpus replay works even
//! under the offline stub harness.

use crate::check::{self, CheckOpts};
use crate::shadow::Oracle;
use crate::violation::Violation;
use fiveg_radio::{hash2, DetRng};
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{
    engine, run_fleet_exec, EngineMode, FaultConfig, FleetExec, FleetSpec, FleetTrace, Scenario, ScenarioBuilder,
    Telemetry, TelemetryConfig, Trace,
};

/// Corpus file schema tag; bump on incompatible layout changes.
pub const CASE_SCHEMA: &str = "fiveg-fuzz-case/v1";

/// Route family of a fuzz case. Parameters are coarse on purpose: shrinking
/// halves them, and the corpus should read like a scenario name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuzzRoute {
    /// Curved freeway drive of the given length, km.
    Freeway(f64),
    /// The standard urban rectangular loop.
    CityLoop,
    /// The dense-urban small-cell loop.
    CityLoopDense,
    /// Walking loop sized to the given minutes per lap.
    Walking(f64),
}

impl FuzzRoute {
    fn name(self) -> &'static str {
        match self {
            FuzzRoute::Freeway(_) => "freeway",
            FuzzRoute::CityLoop => "city_loop",
            FuzzRoute::CityLoopDense => "city_loop_dense",
            FuzzRoute::Walking(_) => "walking",
        }
    }
}

/// Engine-mode axis of a fuzz case: which scheduled-engine differential the
/// case runs on top of the snapshot/reference pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuzzEngine {
    /// The historical check: an event-driven fleet of one must reproduce
    /// the fixed-step single-UE trace byte-for-byte.
    Stepped,
    /// A staggered fleet of `ues` run under the referee (steps every tick,
    /// full control plane, unsampled while asleep) at 1 thread × 1 shard
    /// and event-driven at `threads` × `shards` must produce byte-identical
    /// [`fiveg_sim::FleetTrace`]s — the axis that exercises calendar-wheel
    /// wakeups racing shard migration under real cell-load coupling.
    /// Traces stay off: a UE that records samples never sleeps, so only the
    /// summary pair actually walks the scheduler.
    EventDriven {
        /// Fleet size of the differential pair.
        ues: u32,
        /// Worker threads of the event-driven run.
        threads: u32,
        /// Spatial shards of the event-driven run.
        shards: u32,
    },
}

impl FuzzEngine {
    fn name(self) -> &'static str {
        match self {
            FuzzEngine::Stepped => "stepped",
            FuzzEngine::EventDriven { .. } => "event",
        }
    }
}

/// One point in the fuzzed scenario space. Fully determines a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Route family and size.
    pub route: FuzzRoute,
    /// Operator deployment.
    pub carrier: Carrier,
    /// Radio architecture.
    pub arch: Arch,
    /// Scenario seed (deployment, channel noise, fault draws).
    pub seed: u64,
    /// Duration cap, s.
    pub duration_s: f64,
    /// Tick rate, Hz.
    pub sample_hz: f64,
    /// MR loss probability — may be out of \[0,1\] on purpose, to exercise
    /// the engine-side clamping.
    pub mr_loss_prob: f64,
    /// HO failure probability — may be out of \[0,1\], as above.
    pub ho_failure_prob: f64,
    /// Also probe the Prognos predictor over the finished trace (exercised
    /// by the `scenario_fuzz` binary; the core checks ignore it).
    pub prognos: bool,
    /// Engine-mode axis: stepped-vs-event-driven differential shape.
    pub engine: FuzzEngine,
}

/// The probability pool cases draw from. Includes out-of-range values so
/// every fuzz run exercises `FaultConfig::clamped`.
const PROB_POOL: [f64; 8] = [0.0, 0.0, 0.0, 0.05, 0.2, 0.5, 1.5, -0.25];

impl FuzzCase {
    /// The `index`-th case of fuzz run `fuzz_seed`. Pure: same inputs, same
    /// case, independent of generation order.
    pub fn generate(fuzz_seed: u64, index: u64) -> FuzzCase {
        let mut rng = DetRng::new(hash2(fuzz_seed, index));
        let route = match rng.below(4) {
            0 => FuzzRoute::Freeway(2.0 + rng.below(7) as f64),
            1 => FuzzRoute::CityLoop,
            2 => FuzzRoute::CityLoopDense,
            _ => FuzzRoute::Walking(6.0 + rng.below(10) as f64),
        };
        FuzzCase {
            route,
            carrier: Carrier::ALL[rng.below(Carrier::ALL.len())],
            arch: [Arch::Lte, Arch::Nsa, Arch::Sa][rng.below(3)],
            seed: rng.next_u64(),
            duration_s: (45 + 15 * rng.below(12)) as f64,
            sample_hz: [5.0, 10.0, 20.0][rng.below(3)],
            mr_loss_prob: PROB_POOL[rng.below(PROB_POOL.len())],
            ho_failure_prob: PROB_POOL[rng.below(PROB_POOL.len())],
            prognos: rng.chance(0.25),
            // small fleets keep the per-case budget flat: the multi-UE pair
            // replaces (not stacks on) the fleet-of-one transparency check
            engine: if rng.chance(0.35) {
                FuzzEngine::EventDriven {
                    ues: 2 + rng.below(3) as u32,
                    threads: [1, 2, 4][rng.below(3)],
                    shards: [1, 2, 8][rng.below(3)],
                }
            } else {
                FuzzEngine::Stepped
            },
        }
    }

    /// Builds the concrete scenario this case denotes (telemetry always in
    /// deterministic mode, so the counter algebra is checkable).
    pub fn scenario(&self) -> Scenario {
        let b = match self.route {
            FuzzRoute::Freeway(km) => ScenarioBuilder::freeway(self.carrier, self.arch, km, self.seed),
            FuzzRoute::CityLoop => ScenarioBuilder::city_loop(self.carrier, self.seed),
            FuzzRoute::CityLoopDense => ScenarioBuilder::city_loop_dense(self.carrier, self.seed),
            FuzzRoute::Walking(minutes) => ScenarioBuilder::walking_loop(self.carrier, minutes, 2, self.seed),
        };
        b.arch(self.arch)
            .duration_s(self.duration_s)
            .sample_hz(self.sample_hz)
            .faults(FaultConfig { mr_loss_prob: self.mr_loss_prob, ho_failure_prob: self.ho_failure_prob })
            .telemetry(TelemetryConfig::deterministic())
            .build()
    }

    /// Short human label, e.g. `freeway6-OpY-nsa#3fa9c1d2`.
    pub fn label(&self) -> String {
        let route = match self.route {
            FuzzRoute::Freeway(km) => format!("freeway{km}"),
            FuzzRoute::Walking(m) => format!("walking{m}"),
            r => r.name().to_string(),
        };
        let engine = match self.engine {
            FuzzEngine::Stepped => String::new(),
            FuzzEngine::EventDriven { ues, threads, shards } => format!("-des{ues}u{threads}t{shards}s"),
        };
        format!("{route}-{:?}-{}{engine}#{:08x}", self.carrier, arch_name(self.arch), self.seed as u32)
    }

    /// Encodes the case in the corpus TOML dialect (`key = value` lines
    /// only, [`CASE_SCHEMA`] first).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("schema", format!("\"{CASE_SCHEMA}\""));
        kv("route", format!("\"{}\"", self.route.name()));
        match self.route {
            FuzzRoute::Freeway(km) => kv("route_km", fmt_f64(km)),
            FuzzRoute::Walking(m) => kv("route_minutes", fmt_f64(m)),
            _ => {}
        }
        kv("carrier", format!("\"{:?}\"", self.carrier));
        kv("arch", format!("\"{}\"", arch_name(self.arch)));
        kv("seed", self.seed.to_string());
        kv("duration_s", fmt_f64(self.duration_s));
        kv("sample_hz", fmt_f64(self.sample_hz));
        kv("mr_loss_prob", fmt_f64(self.mr_loss_prob));
        kv("ho_failure_prob", fmt_f64(self.ho_failure_prob));
        kv("prognos", self.prognos.to_string());
        kv("engine", format!("\"{}\"", self.engine.name()));
        if let FuzzEngine::EventDriven { ues, threads, shards } = self.engine {
            kv("fleet_ues", ues.to_string());
            kv("fleet_threads", threads.to_string());
            kv("fleet_shards", shards.to_string());
        }
        out
    }

    /// Parses the corpus TOML dialect back into a case.
    pub fn parse_toml(text: &str) -> Result<FuzzCase, String> {
        let mut map = std::collections::BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            map.insert(k.trim().to_string(), v.trim().trim_matches('"').to_string());
        }
        let get = |k: &str| map.get(k).ok_or_else(|| format!("missing key `{k}`"));
        let f64_of = |k: &str| -> Result<f64, String> { get(k)?.parse::<f64>().map_err(|e| format!("key `{k}`: {e}")) };
        let schema = get("schema")?;
        if schema.as_str() != CASE_SCHEMA {
            return Err(format!("schema `{schema}` != `{CASE_SCHEMA}`"));
        }
        let route = match get("route")?.as_str() {
            "freeway" => FuzzRoute::Freeway(f64_of("route_km")?),
            "city_loop" => FuzzRoute::CityLoop,
            "city_loop_dense" => FuzzRoute::CityLoopDense,
            "walking" => FuzzRoute::Walking(f64_of("route_minutes")?),
            other => return Err(format!("unknown route `{other}`")),
        };
        let carrier = match get("carrier")?.as_str() {
            "OpX" => Carrier::OpX,
            "OpY" => Carrier::OpY,
            "OpZ" => Carrier::OpZ,
            other => return Err(format!("unknown carrier `{other}`")),
        };
        let arch = match get("arch")?.as_str() {
            "lte" => Arch::Lte,
            "nsa" => Arch::Nsa,
            "sa" => Arch::Sa,
            other => return Err(format!("unknown arch `{other}`")),
        };
        // the engine axis post-dates the v1 corpus: absent key means the
        // historical stepped differential, so old case files keep replaying
        let u32_of = |k: &str| -> Result<u32, String> { get(k)?.parse::<u32>().map_err(|e| format!("key `{k}`: {e}")) };
        let engine = match map.get("engine").map(String::as_str) {
            None | Some("stepped") => FuzzEngine::Stepped,
            Some("event") => FuzzEngine::EventDriven {
                ues: u32_of("fleet_ues")?,
                threads: u32_of("fleet_threads")?,
                shards: u32_of("fleet_shards")?,
            },
            Some(other) => return Err(format!("unknown engine `{other}`")),
        };
        Ok(FuzzCase {
            route,
            carrier,
            arch,
            seed: get("seed")?.parse().map_err(|e| format!("key `seed`: {e}"))?,
            duration_s: f64_of("duration_s")?,
            sample_hz: f64_of("sample_hz")?,
            mr_loss_prob: f64_of("mr_loss_prob")?,
            ho_failure_prob: f64_of("ho_failure_prob")?,
            prognos: get("prognos")?.as_str() == "true",
            engine,
        })
    }
}

fn arch_name(a: Arch) -> &'static str {
    match a {
        Arch::Lte => "lte",
        Arch::Nsa => "nsa",
        Arch::Sa => "sa",
    }
}

/// `Display`-formats an f64 so that `parse::<f64>()` round-trips exactly
/// (Rust's shortest-repr float formatting guarantees this).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Knobs for [`run_case`].
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Also require serde round-trip identity and byte-equal serialization
    /// of the two engine traces. Needs a real `serde_json` (off under the
    /// offline stub harness).
    pub check_roundtrip: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { check_roundtrip: true }
    }
}

/// Verdict of one fuzz case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Retained violations (live oracle + post-run checks).
    pub violations: Vec<Violation>,
    /// Total violation count including ones beyond the retention cap.
    pub total_violations: u64,
    /// First difference between the snapshot and reference engine traces,
    /// when they diverged.
    pub divergence: Option<String>,
    /// Ticks the run executed.
    pub ticks: usize,
    /// Committed handovers.
    pub handovers: usize,
    /// Fault-injected HO failures.
    pub ho_failures: u64,
}

impl CaseResult {
    /// True when the case found nothing: no violations, no divergence.
    pub fn passed(&self) -> bool {
        self.total_violations == 0 && self.divergence.is_none()
    }
}

/// Runs one case through the snapshot engine under the live oracle, the
/// post-run trace/counter/journal checks, and the reference engine
/// differentially.
pub fn run_case(case: &FuzzCase, opts: &RunOpts) -> CaseResult {
    let s = case.scenario();
    let tele = Telemetry::new(s.telemetry);
    let mut oracle = Oracle::new(s.arch, case.seed);
    let trace = engine::run_hooked(&s, &tele, &mut oracle);

    let (completions, failures) = (oracle.completions, oracle.failures);
    let mut total = oracle.total_violations();
    let mut violations = oracle.into_violations();
    let mut tally = |invariant: &'static str, detail: String| {
        total += 1;
        violations.push(Violation { invariant, tick: 0, t: 0.0, seed: case.seed, detail });
    };
    // the hook stream and the trace are two recordings of the same run
    if completions != trace.handovers.len() as u64 {
        tally("hook_tally", format!("hook saw {completions} completions, trace has {}", trace.handovers.len()));
    }
    if failures != trace.ho_failures {
        tally("hook_tally", format!("hook saw {failures} HO failures, trace says {}", trace.ho_failures));
    }

    let post = check::check_trace(&trace, s.faults, Some(&tele), &CheckOpts { check_roundtrip: opts.check_roundtrip });
    total += post.len() as u64;
    violations.extend(post);

    let reference = engine::run_reference(&s);
    let mut divergence = diff_traces(&trace, &reference, opts.check_roundtrip);

    // third engine path, differentially. Stepped axis: the event-driven
    // fleet scheduler must reproduce the fixed-step single-UE run exactly
    // for a fleet of one — every granted sleep window over this fuzzed
    // scenario space has to be provably inert. Event axis: a staggered
    // multi-UE fleet run under the referee and event-driven at the fuzzed
    // geometry must match byte-for-byte, so calendar-wheel wakeups racing
    // shard migration and load-coupled early wakes cannot bend the output.
    // Traces are deliberately off on the event axis — a trace-recording UE
    // is never planner-eligible, so only the untraced pair really sleeps.
    if divergence.is_none() {
        divergence = match case.engine {
            FuzzEngine::Stepped => {
                let event = run_fleet_exec(
                    &FleetSpec::new(s.clone(), 1).keep_traces(true),
                    FleetExec::threads(1).shards(1).engine(EngineMode::EventDriven),
                );
                diff_traces(&event.traces[0], &trace, opts.check_roundtrip)
                    .map(|d| format!("event-driven fleet vs fixed-step: {d}"))
            }
            FuzzEngine::EventDriven { ues, threads, shards } => {
                let spec = FleetSpec::new(s.clone(), ues).stagger_s(2.0);
                let referee = run_fleet_exec(&spec, FleetExec::threads(1).shards(1).engine(EngineMode::Referee));
                let event = run_fleet_exec(
                    &spec,
                    FleetExec::threads(threads as usize).shards(shards as usize).engine(EngineMode::EventDriven),
                );
                diff_fleets(&referee, &event)
                    .map(|d| format!("referee vs event-driven fleet ({ues} UEs, {threads}t x {shards}s): {d}"))
            }
        };
    }

    CaseResult {
        violations,
        total_violations: total,
        divergence,
        ticks: trace.samples.len(),
        handovers: trace.handovers.len(),
        ho_failures: trace.ho_failures,
    }
}

/// Describes the first difference between two traces, or `None` when they
/// are equal (and, with `bytes`, serialize identically).
fn diff_traces(snapshot: &Trace, reference: &Trace, bytes: bool) -> Option<String> {
    if snapshot == reference {
        if bytes {
            match (serde_json::to_string(snapshot), serde_json::to_string(reference)) {
                (Ok(a), Ok(b)) if a != b => return Some("equal traces serialized to different bytes".into()),
                (Err(e), _) | (_, Err(e)) => return Some(format!("trace serialization failed: {e}")),
                _ => {}
            }
        }
        return None;
    }
    if snapshot.samples.len() != reference.samples.len() {
        return Some(format!("sample count {} vs {}", snapshot.samples.len(), reference.samples.len()));
    }
    for (i, (a, b)) in snapshot.samples.iter().zip(&reference.samples).enumerate() {
        if a != b {
            return Some(format!("first divergent sample at index {i} (t={})", a.t));
        }
    }
    if snapshot.handovers.len() != reference.handovers.len() {
        return Some(format!("handover count {} vs {}", snapshot.handovers.len(), reference.handovers.len()));
    }
    for (i, (a, b)) in snapshot.handovers.iter().zip(&reference.handovers).enumerate() {
        if a != b {
            return Some(format!(
                "first divergent handover at index {i} ({} vs {})",
                a.ho_type.acronym(),
                b.ho_type.acronym()
            ));
        }
    }
    if snapshot.reports != reference.reports {
        return Some("measurement reports diverged".into());
    }
    if snapshot.rlf_count != reference.rlf_count || snapshot.ho_failures != reference.ho_failures {
        return Some(format!(
            "rlf/failure counts {}/{} vs {}/{}",
            snapshot.rlf_count, snapshot.ho_failures, reference.rlf_count, reference.ho_failures
        ));
    }
    Some("traces differ outside samples/handovers/reports".into())
}

/// First difference between two scheduled fleet runs that must agree on
/// everything: per-UE summaries, the load summary, the scheduler
/// accounting, and every kept trace.
fn diff_fleets(a: &FleetTrace, b: &FleetTrace) -> Option<String> {
    if a.meta != b.meta {
        return Some("fleet meta diverged".into());
    }
    if a.sched != b.sched {
        return Some(format!("scheduler accounting diverged: {:?} vs {:?}", a.sched, b.sched));
    }
    if a.ues != b.ues {
        let i = a.ues.iter().zip(&b.ues).position(|(x, y)| x != y);
        return Some(format!("UE summaries diverged (first at index {i:?})"));
    }
    if a.load != b.load {
        return Some("load summary diverged".into());
    }
    if a.traces.len() != b.traces.len() {
        return Some(format!("kept {} vs {} traces", a.traces.len(), b.traces.len()));
    }
    for (i, (x, y)) in a.traces.iter().zip(&b.traces).enumerate() {
        if let Some(d) = diff_traces(x, y, false) {
            return Some(format!("UE {i} trace: {d}"));
        }
    }
    None
}

/// Greedy fixpoint shrink with a caller-supplied failure predicate.
/// `still_fails` must be true for `case` itself; the result is a case that
/// still fails but where no single shrink step keeps it failing.
pub fn shrink_with(case: &FuzzCase, still_fails: &mut dyn FnMut(&FuzzCase) -> bool) -> FuzzCase {
    let mut best = case.clone();
    'outer: loop {
        for cand in shrink_candidates(&best) {
            if still_fails(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        return best;
    }
}

/// Minimizes a failing case under [`run_case`]: the returned case still
/// fails, with the shortest duration / simplest route / fewest knobs this
/// greedy pass can reach. Deterministic.
pub fn shrink(case: &FuzzCase, opts: &RunOpts) -> FuzzCase {
    shrink_with(case, &mut |c| !run_case(c, opts).passed())
}

/// Single-step shrink candidates, biggest expected reduction first.
fn shrink_candidates(c: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    if c.duration_s > 30.0 {
        out.push(FuzzCase { duration_s: (c.duration_s / 2.0).max(30.0), ..c.clone() });
    }
    if c.sample_hz > 5.0 {
        out.push(FuzzCase { sample_hz: 5.0, ..c.clone() });
    }
    match c.route {
        FuzzRoute::Freeway(km) if km > 2.0 => {
            out.push(FuzzCase { route: FuzzRoute::Freeway((km / 2.0).max(2.0)), ..c.clone() })
        }
        FuzzRoute::CityLoopDense => out.push(FuzzCase { route: FuzzRoute::CityLoop, ..c.clone() }),
        FuzzRoute::CityLoop => out.push(FuzzCase { route: FuzzRoute::Freeway(3.0), ..c.clone() }),
        FuzzRoute::Walking(m) if m > 5.0 => {
            out.push(FuzzCase { route: FuzzRoute::Walking((m / 2.0).max(5.0)), ..c.clone() })
        }
        _ => {}
    }
    if c.mr_loss_prob != 0.0 {
        out.push(FuzzCase { mr_loss_prob: 0.0, ..c.clone() });
    }
    if c.ho_failure_prob != 0.0 {
        out.push(FuzzCase { ho_failure_prob: 0.0, ..c.clone() });
    }
    if c.prognos {
        out.push(FuzzCase { prognos: false, ..c.clone() });
    }
    if let FuzzEngine::EventDriven { ues, threads, shards } = c.engine {
        out.push(FuzzCase { engine: FuzzEngine::Stepped, ..c.clone() });
        if ues > 2 {
            out.push(FuzzCase { engine: FuzzEngine::EventDriven { ues: 2, threads, shards }, ..c.clone() });
        }
        if threads > 1 {
            out.push(FuzzCase { engine: FuzzEngine::EventDriven { ues, threads: 1, shards }, ..c.clone() });
        }
        if shards > 1 {
            out.push(FuzzCase { engine: FuzzEngine::EventDriven { ues, threads, shards: 1 }, ..c.clone() });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_diverse() {
        let mut archs = std::collections::BTreeSet::new();
        let mut routes = std::collections::BTreeSet::new();
        let mut engines = std::collections::BTreeSet::new();
        for i in 0..64 {
            let a = FuzzCase::generate(1, i);
            let b = FuzzCase::generate(1, i);
            assert_eq!(a, b, "case {i} not a pure function of (seed, index)");
            archs.insert(arch_name(a.arch));
            routes.insert(a.route.name());
            engines.insert(a.engine.name());
        }
        assert_eq!(archs.len(), 3, "64 cases must cover all archs");
        assert_eq!(routes.len(), 4, "64 cases must cover all route families");
        assert_eq!(engines.len(), 2, "64 cases must cover both engine axes");
        assert_ne!(FuzzCase::generate(1, 0), FuzzCase::generate(2, 0));
    }

    #[test]
    fn toml_round_trips_generated_cases() {
        for i in 0..32 {
            let c = FuzzCase::generate(9, i);
            let text = c.to_toml();
            let back = FuzzCase::parse_toml(&text).unwrap_or_else(|e| panic!("case {i}: {e}\n{text}"));
            assert_eq!(back, c, "{text}");
        }
    }

    #[test]
    fn toml_parser_rejects_bad_input() {
        assert!(FuzzCase::parse_toml("").unwrap_err().contains("schema"));
        let mut wrong = FuzzCase::generate(1, 0).to_toml();
        wrong = wrong.replace(CASE_SCHEMA, "fiveg-fuzz-case/v0");
        assert!(FuzzCase::parse_toml(&wrong).unwrap_err().contains("schema"));
        let missing = "schema = \"fiveg-fuzz-case/v1\"\nroute = \"city_loop\"\n";
        assert!(FuzzCase::parse_toml(missing).unwrap_err().contains("missing key"));
    }

    #[test]
    fn toml_parser_ignores_comments_and_blank_lines() {
        let c = FuzzCase::generate(3, 7);
        let text = format!("# corpus case\n\n{}\n# trailing\n", c.to_toml());
        assert_eq!(FuzzCase::parse_toml(&text).unwrap(), c);
    }

    /// Corpus files written before the engine axis carry no `engine` key;
    /// they must keep parsing as the historical stepped differential.
    #[test]
    fn missing_engine_key_defaults_to_stepped() {
        let mut c = FuzzCase::generate(5, 0);
        c.engine = FuzzEngine::Stepped;
        let text: String = c.to_toml().lines().filter(|l| !l.starts_with("engine")).map(|l| format!("{l}\n")).collect();
        let back = FuzzCase::parse_toml(&text).unwrap();
        assert_eq!(back.engine, FuzzEngine::Stepped);
        assert_eq!(back, c);
        let bad = c.to_toml().replace("engine = \"stepped\"", "engine = \"warp\"");
        assert!(FuzzCase::parse_toml(&bad).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn known_good_case_passes_the_full_check() {
        let case = FuzzCase {
            route: FuzzRoute::Freeway(3.0),
            carrier: Carrier::OpY,
            arch: Arch::Nsa,
            seed: 7,
            duration_s: 60.0,
            sample_hz: 10.0,
            mr_loss_prob: 0.0,
            ho_failure_prob: 0.0,
            prognos: false,
            engine: FuzzEngine::Stepped,
        };
        let r = run_case(&case, &RunOpts { check_roundtrip: false });
        assert!(r.passed(), "violations={:?} divergence={:?}", r.violations, r.divergence);
        assert!(r.ticks >= 590 && r.ticks <= 601, "{} ticks for a 60 s / 10 Hz run", r.ticks);
    }

    /// The event axis at its raciest geometry: calendar-wheel wakeups and
    /// load-coupled early wakes racing shard migration on a city loop must
    /// still match the stepped fleet byte-for-byte.
    #[test]
    fn known_good_event_case_passes_the_full_check() {
        let case = FuzzCase {
            route: FuzzRoute::CityLoop,
            carrier: Carrier::OpY,
            arch: Arch::Sa,
            seed: 19,
            duration_s: 50.0,
            sample_hz: 5.0,
            mr_loss_prob: 0.0,
            ho_failure_prob: 0.0,
            prognos: false,
            engine: FuzzEngine::EventDriven { ues: 4, threads: 2, shards: 8 },
        };
        let r = run_case(&case, &RunOpts { check_roundtrip: false });
        assert!(r.passed(), "violations={:?} divergence={:?}", r.violations, r.divergence);
    }

    #[test]
    fn shrink_reaches_the_minimal_failing_configuration() {
        let case = FuzzCase {
            route: FuzzRoute::CityLoopDense,
            carrier: Carrier::OpX,
            arch: Arch::Nsa,
            seed: 11,
            duration_s: 240.0,
            sample_hz: 20.0,
            mr_loss_prob: 0.2,
            ho_failure_prob: 0.5,
            prognos: true,
            engine: FuzzEngine::EventDriven { ues: 4, threads: 4, shards: 8 },
        };
        // synthetic bug: fails whenever it runs ≥60 s with HO failures on
        let mut predicate = |c: &FuzzCase| c.duration_s >= 60.0 && c.ho_failure_prob > 0.0;
        assert!(predicate(&case));
        let min = shrink_with(&case, &mut predicate);
        assert!(predicate(&min));
        assert_eq!(min.duration_s, 60.0, "duration not minimized: {min:?}");
        assert!(min.ho_failure_prob > 0.0, "load-bearing knob removed: {min:?}");
        assert_eq!(min.mr_loss_prob, 0.0);
        assert_eq!(min.sample_hz, 5.0);
        assert!(!min.prognos);
        assert_eq!(min.engine, FuzzEngine::Stepped, "engine axis not shrunk away: {min:?}");
        // CityLoopDense → CityLoop → Freeway(3.0) → Freeway(2.0)
        assert_eq!(min.route, FuzzRoute::Freeway(2.0), "route not simplified: {min:?}");
    }
}
